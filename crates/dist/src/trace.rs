//! SPMD collective-protocol tracing and verification.
//!
//! diBELLA 2D is an SPMD program: every rank must execute the **same
//! sequence of collectives** — same phase, same collective kind, same
//! communicator size — or a real MPI run deadlocks (mismatched
//! `MPI_Alltoallv`/`MPI_Bcast` posts) even though this repository's simulated
//! runtime, which shares one address space, would sail through.  The
//! simulation therefore records a [`CollectiveTrace`] per virtual rank while
//! it runs and [`verify_spmd`] checks the protocol invariant afterwards:
//! identical `(phase, kind, participants)` sequences on every rank.
//!
//! Word counts are carried in the trace for diagnostics but deliberately
//! **not** compared: per-rank payloads legitimately differ (data-dependent
//! `alltoallv` buckets, skewed broadcasts), only the control sequence is
//! required to match.
//!
//! Tracing is opt-in via [`CommStats::enable_spmd_trace`]; the pipeline
//! enables it when `debug_assertions` are on and asserts the invariant at the
//! end of every run, so every multi-rank test doubles as a protocol check at
//! zero release-build cost.

use std::fmt;

use crate::comm::CommPhase;

/// The kind of a simulated collective operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveKind {
    /// A simulated `MPI_Alltoallv` ([`alltoallv_counted`](crate::alltoallv_counted)).
    Alltoallv,
    /// A simulated row/column broadcast ([`record_broadcast`](crate::record_broadcast)).
    Broadcast,
    /// A simulated point-to-point send ([`record_p2p`](crate::record_p2p)).
    PointToPoint,
}

impl CollectiveKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            CollectiveKind::Alltoallv => "Alltoallv",
            CollectiveKind::Broadcast => "Broadcast",
            CollectiveKind::PointToPoint => "PointToPoint",
        }
    }
}

impl fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(self.name())
    }
}

/// One collective operation as observed by one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectiveEvent {
    /// The pipeline phase the collective was attributed to.
    pub phase: CommPhase,
    /// What kind of collective was posted.
    pub kind: CollectiveKind,
    /// How many ranks took part (the communicator size).
    pub participants: usize,
    /// Words this rank sent in the operation — diagnostic only, never
    /// compared by [`verify_spmd`] (payloads are data-dependent).
    pub words: u64,
}

impl CollectiveEvent {
    /// The protocol-relevant part of the event: what [`verify_spmd`] compares.
    pub fn signature(&self) -> (CommPhase, CollectiveKind, usize) {
        (self.phase, self.kind, self.participants)
    }
}

impl fmt::Display for CollectiveEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} x{} ({} words)",
            self.phase, self.kind, self.participants, self.words
        )
    }
}

/// The sequence of collectives one virtual rank observed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CollectiveTrace {
    /// The virtual rank this trace belongs to.
    pub rank: usize,
    /// The collectives, in the order the rank posted them.
    pub events: Vec<CollectiveEvent>,
}

impl CollectiveTrace {
    /// An empty trace for `rank`.
    pub fn new(rank: usize) -> Self {
        CollectiveTrace { rank, events: Vec::new() }
    }
}

/// A violation of the SPMD protocol invariant, with enough context to read
/// off which rank diverged and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpmdDivergence {
    /// The rank whose sequence first disagreed with rank `reference_rank`.
    pub rank: usize,
    /// The rank the diverging rank was compared against (the lowest-numbered
    /// trace, normally rank 0).
    pub reference_rank: usize,
    /// Index into the event sequences where the first disagreement sits.
    pub index: usize,
    /// What the reference rank posted at `index` (`None` = its sequence
    /// already ended).
    pub expected: Option<CollectiveEvent>,
    /// What the diverging rank posted at `index` (`None` = its sequence
    /// already ended).
    pub actual: Option<CollectiveEvent>,
    /// The events both ranks agreed on immediately before the divergence
    /// (up to three, for context in the rendered diff).
    pub context: Vec<CollectiveEvent>,
}

impl fmt::Display for SpmdDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "SPMD protocol divergence: rank {} disagrees with rank {} at collective #{}",
            self.rank, self.reference_rank, self.index
        )?;
        for (i, event) in self.context.iter().enumerate() {
            let at = self.index - self.context.len() + i;
            writeln!(f, "    #{at}  both: {event}")?;
        }
        match &self.expected {
            Some(event) => writeln!(f, "    #{}  rank {} posted: {event}", self.index, self.reference_rank)?,
            None => writeln!(
                f,
                "    #{}  rank {} posted: <end of sequence>",
                self.index, self.reference_rank
            )?,
        }
        match &self.actual {
            Some(event) => write!(f, "    #{}  rank {} posted: {event}", self.index, self.rank)?,
            None => write!(f, "    #{}  rank {} posted: <end of sequence>", self.index, self.rank)?,
        }
        Ok(())
    }
}

/// Check the SPMD protocol invariant: every rank observed an identical
/// `(phase, kind, participants)` collective sequence.
///
/// Word counts are ignored — per-rank payloads are data-dependent and may
/// legitimately differ; only the control sequence must match.  Returns the
/// first divergence found (lowest diverging rank, earliest index), rendered
/// by its `Display` impl as a readable diff.
///
/// Zero or one traces are vacuously SPMD-consistent.
pub fn verify_spmd(traces: &[CollectiveTrace]) -> Result<(), SpmdDivergence> {
    let Some(reference) = traces.first() else {
        return Ok(());
    };
    for trace in &traces[1..] {
        let len = reference.events.len().max(trace.events.len());
        for index in 0..len {
            let expected = reference.events.get(index);
            let actual = trace.events.get(index);
            let matches = match (expected, actual) {
                (Some(e), Some(a)) => e.signature() == a.signature(),
                _ => false,
            };
            if !matches {
                let context_start = index.saturating_sub(3);
                return Err(SpmdDivergence {
                    rank: trace.rank,
                    reference_rank: reference.rank,
                    index,
                    expected: expected.copied(),
                    actual: actual.copied(),
                    context: reference.events[context_start..index].to_vec(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(phase: CommPhase, kind: CollectiveKind, participants: usize, words: u64) -> CollectiveEvent {
        CollectiveEvent { phase, kind, participants, words }
    }

    fn trace(rank: usize, events: Vec<CollectiveEvent>) -> CollectiveTrace {
        CollectiveTrace { rank, events }
    }

    #[test]
    fn identical_sequences_verify() {
        let events = vec![
            event(CommPhase::KmerCounting, CollectiveKind::Alltoallv, 4, 100),
            event(CommPhase::OverlapDetection, CollectiveKind::Broadcast, 2, 8),
        ];
        let traces: Vec<_> = (0..4).map(|r| trace(r, events.clone())).collect();
        assert!(verify_spmd(&traces).is_ok());
    }

    #[test]
    fn word_counts_may_differ_across_ranks() {
        // Payload skew is legal; only the control sequence must match.
        let traces = vec![
            trace(0, vec![event(CommPhase::KmerCounting, CollectiveKind::Alltoallv, 2, 100)]),
            trace(1, vec![event(CommPhase::KmerCounting, CollectiveKind::Alltoallv, 2, 3)]),
        ];
        assert!(verify_spmd(&traces).is_ok());
    }

    #[test]
    fn empty_and_singleton_inputs_are_vacuously_consistent() {
        assert!(verify_spmd(&[]).is_ok());
        assert!(verify_spmd(&[trace(
            0,
            vec![event(CommPhase::Other, CollectiveKind::Broadcast, 3, 1)]
        )])
        .is_ok());
    }

    #[test]
    fn kind_mismatch_is_reported_at_the_right_index() {
        let shared = event(CommPhase::KmerCounting, CollectiveKind::Alltoallv, 2, 10);
        let traces = vec![
            trace(0, vec![shared, event(CommPhase::OverlapDetection, CollectiveKind::Broadcast, 2, 5)]),
            trace(1, vec![shared, event(CommPhase::OverlapDetection, CollectiveKind::PointToPoint, 2, 5)]),
        ];
        let err = verify_spmd(&traces).unwrap_err();
        assert_eq!(err.rank, 1);
        assert_eq!(err.reference_rank, 0);
        assert_eq!(err.index, 1);
        assert_eq!(err.expected.unwrap().kind, CollectiveKind::Broadcast);
        assert_eq!(err.actual.unwrap().kind, CollectiveKind::PointToPoint);
        assert_eq!(err.context, vec![shared]);
    }

    #[test]
    fn length_mismatch_is_a_divergence() {
        let shared = event(CommPhase::Other, CollectiveKind::Broadcast, 2, 0);
        let traces = vec![trace(0, vec![shared, shared]), trace(1, vec![shared])];
        let err = verify_spmd(&traces).unwrap_err();
        assert_eq!(err.index, 1);
        assert!(err.expected.is_some());
        assert!(err.actual.is_none());
    }

    #[test]
    fn divergence_diff_is_readable() {
        let shared = event(CommPhase::KmerCounting, CollectiveKind::Alltoallv, 4, 12);
        let traces = vec![
            trace(0, vec![shared, event(CommPhase::OverlapDetection, CollectiveKind::Broadcast, 2, 5)]),
            trace(3, vec![shared, event(CommPhase::TransitiveReduction, CollectiveKind::Broadcast, 2, 5)]),
        ];
        let rendered = verify_spmd(&traces).unwrap_err().to_string();
        assert!(rendered.contains("rank 3 disagrees with rank 0 at collective #1"), "{rendered}");
        assert!(rendered.contains("both: KmerCounting/Alltoallv x4"), "{rendered}");
        assert!(rendered.contains("rank 0 posted: OverlapDetection/Broadcast x2"), "{rendered}");
        assert!(rendered.contains("rank 3 posted: TransitiveReduction/Broadcast x2"), "{rendered}");
    }

    #[test]
    fn participant_count_mismatch_diverges() {
        let traces = vec![
            trace(0, vec![event(CommPhase::Other, CollectiveKind::Broadcast, 3, 1)]),
            trace(1, vec![event(CommPhase::Other, CollectiveKind::Broadcast, 2, 1)]),
        ];
        assert!(verify_spmd(&traces).is_err());
    }
}

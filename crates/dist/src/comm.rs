//! Per-phase communication accounting.
//!
//! All virtual ranks share one address space, so no bytes actually move;
//! instead every simulated collective records the words (8-byte units) and
//! messages a real MPI run would have moved.  [`CommStats`] is the shared,
//! thread-safe accumulator the pipeline threads through every stage;
//! [`CommSnapshot`] is the frozen copy reports and tests inspect.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

use crate::trace::{CollectiveEvent, CollectiveKind, CollectiveTrace, verify_spmd};

/// The communicating stages of Algorithm 1, matching Table I of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CommPhase {
    /// The two-pass k-mer exchange of the distributed k-mer counter.
    KmerCounting,
    /// The k-min-mer key exchange and ownership/ID-assignment pass of the
    /// sketch-space candidate subsystem (replaces `KmerCounting` when the
    /// pipeline runs in k-min-mer mode).
    SketchIndex,
    /// The SpGEMM computing the candidate matrix `C = A·Aᵀ` (2D SUMMA
    /// broadcasts or the 1D outer-product reduction).
    OverlapDetection,
    /// The sequence exchange that precedes pairwise alignment.
    ReadExchange,
    /// The repeated squaring of `R` inside Algorithm 2.
    TransitiveReduction,
    /// Gathering each contig's reads to its owner rank for the POA consensus
    /// stage (beyond the paper's pipeline, which stops at the string graph).
    Consensus,
    /// Anything else (tests, tools, experiments).
    Other,
}

impl CommPhase {
    /// All phases, in Table I order (with the post-paper consensus stage
    /// before `Other`).
    pub const ALL: [CommPhase; 7] = [
        CommPhase::KmerCounting,
        CommPhase::SketchIndex,
        CommPhase::OverlapDetection,
        CommPhase::ReadExchange,
        CommPhase::TransitiveReduction,
        CommPhase::Consensus,
        CommPhase::Other,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            CommPhase::KmerCounting => "KmerCounting",
            CommPhase::SketchIndex => "SketchIndex",
            CommPhase::OverlapDetection => "OverlapDetection",
            CommPhase::ReadExchange => "ReadExchange",
            CommPhase::TransitiveReduction => "TransitiveReduction",
            CommPhase::Consensus => "Consensus",
            CommPhase::Other => "Other",
        }
    }
}

impl fmt::Display for CommPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(self.name())
    }
}

/// The counters of one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCounters {
    /// Total 8-byte words moved, summed over all ranks.
    pub words: u64,
    /// Total messages sent, summed over all ranks.
    pub messages: u64,
    /// The largest per-rank word volume recorded via
    /// [`CommStats::record_rank_max`] for any single collective in this phase
    /// (sent or received side, whichever is larger) — a load-imbalance
    /// indicator, not a per-rank running total.
    pub max_words_per_rank: u64,
}

/// A frozen copy of a [`CommStats`], safe to keep, clone and compare.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommSnapshot {
    /// Per-phase counters, in phase order.
    pub phases: BTreeMap<CommPhase, PhaseCounters>,
    /// Named auxiliary counters (e.g. `"tr_iterations"`, `"summa_stages"`).
    pub extras: BTreeMap<String, u64>,
}

impl CommSnapshot {
    /// Counters for one phase (zero if nothing was recorded).
    pub fn phase(&self, phase: CommPhase) -> PhaseCounters {
        self.phases.get(&phase).copied().unwrap_or_default()
    }

    /// Total words across all phases.
    pub fn total_words(&self) -> u64 {
        self.phases.values().map(|c| c.words).sum()
    }

    /// Total messages across all phases.
    pub fn total_messages(&self) -> u64 {
        self.phases.values().map(|c| c.messages).sum()
    }
}

/// Thread-safe accumulator of simulated communication volumes.
///
/// One `CommStats` is threaded through a whole pipeline run; stages record
/// into it via [`CommStats::record`] (or through the
/// [`collectives`](crate::collectives)), and reports take a
/// [`CommSnapshot`] at the end.
#[derive(Debug, Default)]
pub struct CommStats {
    inner: Mutex<CommSnapshot>,
    /// Per-rank collective traces for the SPMD protocol verifier — `None`
    /// until [`CommStats::enable_spmd_trace`] switches tracing on.
    spmd: Mutex<Option<Vec<CollectiveTrace>>>,
}

impl CommStats {
    /// A fresh accumulator with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `words` words and `messages` messages to `phase`.
    pub fn record(&self, phase: CommPhase, words: u64, messages: u64) {
        let mut inner = self.inner.lock().unwrap();
        let counters = inner.phases.entry(phase).or_default();
        counters.words += words;
        counters.messages += messages;
    }

    /// Record the word volume one rank moved in `phase`, keeping the maximum
    /// (a per-rank bandwidth / load-imbalance indicator).
    pub fn record_rank_max(&self, phase: CommPhase, words: u64) {
        let mut inner = self.inner.lock().unwrap();
        let counters = inner.phases.entry(phase).or_default();
        counters.max_words_per_rank = counters.max_words_per_rank.max(words);
    }

    /// Add `amount` to the named auxiliary counter.
    pub fn bump_extra(&self, key: &str, amount: u64) {
        let mut inner = self.inner.lock().unwrap();
        *inner.extras.entry(key.to_string()).or_insert(0) += amount;
    }

    /// Raise the named auxiliary counter to `value` if it is larger (a
    /// maximum-tracking extra, e.g. the peak SpGEMM accumulator row width).
    pub fn max_extra(&self, key: &str, value: u64) {
        let mut inner = self.inner.lock().unwrap();
        let slot = inner.extras.entry(key.to_string()).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// Current value of the named auxiliary counter (0 if never recorded).
    pub fn extra(&self, key: &str) -> u64 {
        self.inner.lock().unwrap().extras.get(key).copied().unwrap_or(0)
    }

    /// Words recorded for `phase` so far.
    pub fn words(&self, phase: CommPhase) -> u64 {
        self.inner.lock().unwrap().phase(phase).words
    }

    /// Messages recorded for `phase` so far.
    pub fn messages(&self, phase: CommPhase) -> u64 {
        self.inner.lock().unwrap().phase(phase).messages
    }

    /// Total words across all phases so far.
    pub fn total_words(&self) -> u64 {
        self.inner.lock().unwrap().total_words()
    }

    /// A frozen copy of the current counters.
    pub fn snapshot(&self) -> CommSnapshot {
        self.inner.lock().unwrap().clone()
    }

    // --- SPMD protocol tracing ----------------------------------------------

    /// Switch on per-rank collective tracing for `nranks` virtual ranks,
    /// replacing any previous trace.
    ///
    /// Once enabled, every simulated collective appends a
    /// [`CollectiveEvent`] to each participating rank's
    /// [`CollectiveTrace`]; [`CommStats::assert_spmd`] (or
    /// [`verify_spmd`] on [`CommStats::spmd_traces`]) then checks the SPMD
    /// protocol invariant.  The pipeline enables this when
    /// `debug_assertions` are on, so release builds pay nothing.
    pub fn enable_spmd_trace(&self, nranks: usize) {
        let traces = (0..nranks).map(CollectiveTrace::new).collect();
        *self.spmd.lock().unwrap() = Some(traces);
    }

    /// Whether collective tracing is currently enabled.
    pub fn spmd_trace_enabled(&self) -> bool {
        self.spmd.lock().unwrap().is_some()
    }

    /// A copy of the per-rank collective traces (empty if tracing is off).
    pub fn spmd_traces(&self) -> Vec<CollectiveTrace> {
        self.spmd.lock().unwrap().clone().unwrap_or_default()
    }

    /// Record one collective that every traced rank took part in
    /// symmetrically (broadcasts, point-to-point pairs): the same event —
    /// including `words` — is appended to every rank's trace atomically, so
    /// concurrent collectives from [`par_ranks`](crate::par_ranks) workers
    /// cannot interleave differently on different ranks.
    ///
    /// No-op while tracing is disabled.
    pub fn trace_symmetric(
        &self,
        phase: CommPhase,
        kind: CollectiveKind,
        participants: usize,
        words: u64,
    ) {
        let mut guard = self.spmd.lock().unwrap();
        if let Some(traces) = guard.as_mut() {
            for trace in traces.iter_mut() {
                trace.events.push(CollectiveEvent { phase, kind, participants, words });
            }
        }
    }

    /// Record one all-to-all exchange over `participants` ranks, with
    /// `words_sent[r]` words attributed to rank `r` (diagnostic only — the
    /// verifier compares the control sequence, not the payloads).  Ranks
    /// beyond `words_sent.len()`, or all ranks when the exchange spans a
    /// different rank count than the trace, are attributed zero words.
    ///
    /// No-op while tracing is disabled.
    pub fn trace_alltoallv(&self, phase: CommPhase, participants: usize, words_sent: &[u64]) {
        let mut guard = self.spmd.lock().unwrap();
        if let Some(traces) = guard.as_mut() {
            let per_rank = if words_sent.len() == traces.len() { Some(words_sent) } else { None };
            for (r, trace) in traces.iter_mut().enumerate() {
                let words = per_rank.map_or(0, |w| w[r]);
                trace.events.push(CollectiveEvent {
                    phase,
                    kind: CollectiveKind::Alltoallv,
                    participants,
                    words,
                });
            }
        }
    }

    /// Append an event to **one** rank's trace only — a fault-injection hook
    /// for negative tests that seed a rank-divergent collective (the thing a
    /// buggy rank-dependent branch would produce).  Out-of-range ranks are
    /// ignored; no-op while tracing is disabled.
    pub fn trace_event_for_rank(
        &self,
        rank: usize,
        phase: CommPhase,
        kind: CollectiveKind,
        participants: usize,
        words: u64,
    ) {
        let mut guard = self.spmd.lock().unwrap();
        if let Some(traces) = guard.as_mut() {
            if let Some(trace) = traces.get_mut(rank) {
                trace.events.push(CollectiveEvent { phase, kind, participants, words });
            }
        }
    }

    /// Assert the SPMD protocol invariant over the recorded traces,
    /// panicking with the rendered divergence diff on violation.  No-op while
    /// tracing is disabled, so callers may assert unconditionally.
    pub fn assert_spmd(&self) {
        let guard = self.spmd.lock().unwrap();
        if let Some(traces) = guard.as_ref() {
            if let Err(divergence) = verify_spmd(traces) {
                drop(guard);
                panic!("{divergence}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_per_phase() {
        let stats = CommStats::new();
        stats.record(CommPhase::KmerCounting, 100, 4);
        stats.record(CommPhase::KmerCounting, 50, 2);
        stats.record(CommPhase::OverlapDetection, 7, 1);
        assert_eq!(stats.words(CommPhase::KmerCounting), 150);
        assert_eq!(stats.messages(CommPhase::KmerCounting), 6);
        assert_eq!(stats.words(CommPhase::OverlapDetection), 7);
        assert_eq!(stats.words(CommPhase::ReadExchange), 0);
        assert_eq!(stats.total_words(), 157);
    }

    #[test]
    fn snapshot_freezes_and_later_records_do_not_leak_in() {
        let stats = CommStats::new();
        stats.record(CommPhase::ReadExchange, 10, 1);
        stats.bump_extra("tr_iterations", 3);
        let snap = stats.snapshot();
        stats.record(CommPhase::ReadExchange, 99, 9);
        assert_eq!(snap.phase(CommPhase::ReadExchange).words, 10);
        assert_eq!(snap.total_words(), 10);
        assert_eq!(snap.total_messages(), 1);
        assert_eq!(snap.extras.get("tr_iterations"), Some(&3));
        assert_eq!(stats.words(CommPhase::ReadExchange), 109);
    }

    #[test]
    fn rank_max_keeps_the_maximum_not_the_sum() {
        let stats = CommStats::new();
        stats.record_rank_max(CommPhase::ReadExchange, 40);
        stats.record_rank_max(CommPhase::ReadExchange, 25);
        stats.record_rank_max(CommPhase::ReadExchange, 31);
        assert_eq!(stats.snapshot().phase(CommPhase::ReadExchange).max_words_per_rank, 40);
    }

    #[test]
    fn extras_accumulate_by_key() {
        let stats = CommStats::new();
        stats.bump_extra("summa_stages", 2);
        stats.bump_extra("summa_stages", 3);
        stats.bump_extra("tr_iterations", 1);
        let snap = stats.snapshot();
        assert_eq!(snap.extras.get("summa_stages"), Some(&5));
        assert!(snap.extras.contains_key("tr_iterations"));
    }

    #[test]
    fn max_extra_keeps_the_maximum_and_extra_reads_back() {
        let stats = CommStats::new();
        stats.max_extra("spgemm_peak_row_width", 12);
        stats.max_extra("spgemm_peak_row_width", 7);
        stats.max_extra("spgemm_peak_row_width", 31);
        assert_eq!(stats.extra("spgemm_peak_row_width"), 31);
        assert_eq!(stats.extra("never_recorded"), 0);
        assert_eq!(stats.snapshot().extras.get("spgemm_peak_row_width"), Some(&31));
    }

    #[test]
    fn phases_display_with_padding() {
        assert_eq!(format!("{:>20}", CommPhase::KmerCounting), "        KmerCounting");
        assert_eq!(CommPhase::ALL.len(), 7);
        // Ord is needed for the BTreeMap key; spot-check Table I ordering.
        assert!(CommPhase::KmerCounting < CommPhase::TransitiveReduction);
    }

    #[test]
    fn stats_are_shareable_across_threads() {
        let stats = CommStats::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        stats.record(CommPhase::Other, 1, 1);
                    }
                });
            }
        });
        assert_eq!(stats.words(CommPhase::Other), 4000);
        assert_eq!(stats.messages(CommPhase::Other), 4000);
    }
}

//! Simulated MPI collectives with exact volume accounting.
//!
//! Because all virtual ranks share one address space, these collectives move
//! data with `Vec` plumbing and **record** the words and messages a real MPI
//! run would have moved.  The conventions match the paper's instrumentation:
//! volumes are in 8-byte words, self-messages (`src == dst`) are free, and
//! empty point-to-point buffers are not sent.

use crate::comm::{CommPhase, CommStats};
use crate::trace::CollectiveKind;

pub use crate::extras::{p2p_messages_key, p2p_words_key};

/// The wire size of `T` in 8-byte words (`⌈size_of::<T>() / 8⌉`).
///
/// Callers that ship a more compact wire format than the in-memory layout
/// (e.g. 2-bit packed k-mers) pass their own per-item word count instead.
pub fn words_of<T>() -> u64 {
    (std::mem::size_of::<T>() as u64).div_ceil(8)
}

/// Simulated `MPI_Alltoallv`: deliver `send[src][dst]` to rank `dst`,
/// recording the traffic under `phase`.
///
/// Rank `dst` receives the concatenation of every `send[src][dst]` in
/// ascending `src` order (deterministic, like a rank-ordered `MPI_Alltoallv`).
/// Each off-rank, non-empty buffer counts `len · words_per_item` words and
/// one message against the sending rank; on-rank data (`src == dst`) is free,
/// so a single-rank exchange records nothing.  The largest per-rank volume of
/// this exchange — sent **or received**, so that both send- and receive-side
/// skew show up — is folded into the phase's
/// [`max_words_per_rank`](crate::PhaseCounters::max_words_per_rank).
///
/// # Panics
/// Panics if any `send[src]` does not have exactly one buffer per rank.
pub fn alltoallv_counted<T>(
    send: Vec<Vec<Vec<T>>>,
    stats: &CommStats,
    phase: CommPhase,
    words_per_item: u64,
) -> Vec<Vec<T>> {
    let nprocs = send.len();
    let mut recv: Vec<Vec<T>> = (0..nprocs).map(|_| Vec::new()).collect();
    let mut words_received = vec![0u64; nprocs];
    let mut words_sent_by_rank = vec![0u64; nprocs];
    for (src, buffers) in send.into_iter().enumerate() {
        assert_eq!(
            buffers.len(),
            nprocs,
            "rank {src} prepared {} buffers for {nprocs} ranks",
            buffers.len()
        );
        let mut words_sent = 0u64;
        let mut messages_sent = 0u64;
        for (dst, buffer) in buffers.into_iter().enumerate() {
            if dst != src && !buffer.is_empty() {
                let words = buffer.len() as u64 * words_per_item;
                words_sent += words;
                words_received[dst] += words;
                messages_sent += 1;
            }
            recv[dst].extend(buffer);
        }
        words_sent_by_rank[src] = words_sent;
        if words_sent > 0 || messages_sent > 0 {
            stats.record(phase, words_sent, messages_sent);
            stats.record_rank_max(phase, words_sent);
        }
    }
    for words in words_received {
        if words > 0 {
            stats.record_rank_max(phase, words);
        }
    }
    stats.trace_alltoallv(phase, nprocs, &words_sent_by_rank);
    recv
}

/// Account for one simulated broadcast of `words` words from one rank to the
/// other `group_size - 1` members of its grid row or column.
///
/// The data itself is already shared (one address space), so only the
/// accounting happens: `words · (group_size - 1)` words and `group_size - 1`
/// messages, which is what Sparse SUMMA's per-stage `A`/`B` block broadcasts
/// cost in the paper's Table I model.  A broadcast within a single-member
/// group records nothing.
///
/// Unlike point-to-point sends, a zero-word broadcast still counts its
/// `group_size - 1` messages: `MPI_Bcast` is a collective, so every member of
/// the row/column communicator posts it even when the root's sparse block is
/// empty (the receivers cannot know the payload is empty without taking part).
/// The SUMMA kernels therefore call this for every stage block, empty or not,
/// which keeps the accounted message count at its data-independent closed
/// form.
pub fn record_broadcast(stats: &CommStats, phase: CommPhase, words: u64, group_size: usize) {
    if group_size <= 1 {
        return;
    }
    let peers = (group_size - 1) as u64;
    stats.record(phase, words * peers, peers);
    stats.record_rank_max(phase, words * peers);
    stats.trace_symmetric(phase, CollectiveKind::Broadcast, group_size, words);
}

/// Account for one simulated point-to-point send of `words` words between two
/// distinct ranks (e.g. the cross-diagonal block exchange of the symmetric
/// Sparse SUMMA, which ships each computed `C_{i,j}` block from rank `(i, j)`
/// to its mirror rank `(j, i)`).
///
/// Follows the module's point-to-point convention: empty buffers are **not**
/// sent (unlike broadcasts, a sender knows its buffer is empty and can skip
/// the `MPI_Send`; the matching receive learns the count from a preceding
/// size exchange the model folds into the payload message).  Besides the
/// phase's word/message totals, the volume is tallied under the
/// [`p2p_words_key`]/[`p2p_messages_key`] extras so reports can split
/// point-to-point traffic from the collective (broadcast) traffic of the same
/// phase.
pub fn record_p2p(stats: &CommStats, phase: CommPhase, words: u64) {
    if words == 0 {
        return;
    }
    stats.record(phase, words, 1);
    stats.record_rank_max(phase, words);
    stats.bump_extra(&p2p_words_key(phase), words);
    stats.bump_extra(&p2p_messages_key(phase), 1);
    stats.trace_symmetric(phase, CollectiveKind::PointToPoint, 2, words);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommPhase;

    fn square_send(matrix: &[&[&[u32]]]) -> Vec<Vec<Vec<u32>>> {
        matrix.iter().map(|row| row.iter().map(|buf| buf.to_vec()).collect()).collect()
    }

    #[test]
    fn delivery_is_concatenated_in_source_order() {
        let stats = CommStats::new();
        let send = square_send(&[
            &[&[1], &[2, 3], &[4]],
            &[&[5, 6], &[], &[7]],
            &[&[8], &[9], &[]],
        ]);
        let recv = alltoallv_counted(send, &stats, CommPhase::Other, 1);
        assert_eq!(recv[0], vec![1, 5, 6, 8]);
        assert_eq!(recv[1], vec![2, 3, 9]);
        assert_eq!(recv[2], vec![4, 7]);
    }

    #[test]
    fn volumes_match_hand_computed_off_rank_items() {
        let stats = CommStats::new();
        let send = square_send(&[
            &[&[1], &[2, 3], &[4]],    // off-rank: 3 items, 2 messages
            &[&[5, 6], &[], &[7]],     // off-rank: 3 items, 2 messages
            &[&[8], &[9], &[]],        // off-rank: 2 items, 2 messages
        ]);
        let _ = alltoallv_counted(send, &stats, CommPhase::KmerCounting, 1);
        assert_eq!(stats.words(CommPhase::KmerCounting), 8);
        assert_eq!(stats.messages(CommPhase::KmerCounting), 6);
        // Per-rank max: ranks sent 3, 3 and 2 words respectively.
        assert_eq!(stats.snapshot().phase(CommPhase::KmerCounting).max_words_per_rank, 3);
    }

    #[test]
    fn words_per_item_scales_the_volume_but_not_the_messages() {
        let stats = CommStats::new();
        let send = square_send(&[&[&[], &[1, 2, 3]], &[&[4], &[]]]);
        let _ = alltoallv_counted(send, &stats, CommPhase::Other, 5);
        assert_eq!(stats.words(CommPhase::Other), (3 + 1) * 5);
        assert_eq!(stats.messages(CommPhase::Other), 2);
    }

    #[test]
    fn single_rank_and_empty_buffers_are_free() {
        let stats = CommStats::new();
        let recv = alltoallv_counted(vec![vec![vec![1u8, 2, 3]]], &stats, CommPhase::Other, 4);
        assert_eq!(recv, vec![vec![1, 2, 3]]);
        assert_eq!(stats.words(CommPhase::Other), 0);
        assert_eq!(stats.messages(CommPhase::Other), 0);

        // Empty off-rank buffers do not count as messages either.
        let send: Vec<Vec<Vec<u8>>> = vec![vec![vec![], vec![]], vec![vec![], vec![]]];
        let _ = alltoallv_counted(send, &stats, CommPhase::Other, 4);
        assert_eq!(stats.messages(CommPhase::Other), 0);
    }

    #[test]
    fn broadcast_accounting_matches_group_size() {
        let stats = CommStats::new();
        record_broadcast(&stats, CommPhase::OverlapDetection, 10, 4);
        assert_eq!(stats.words(CommPhase::OverlapDetection), 30);
        assert_eq!(stats.messages(CommPhase::OverlapDetection), 3);
        // Single-member groups are free (the 1×1 grid case).
        record_broadcast(&stats, CommPhase::OverlapDetection, 10, 1);
        assert_eq!(stats.words(CommPhase::OverlapDetection), 30);
        // Empty broadcasts still pay latency in a bigger group.
        record_broadcast(&stats, CommPhase::OverlapDetection, 0, 3);
        assert_eq!(stats.messages(CommPhase::OverlapDetection), 5);
    }

    #[test]
    fn p2p_records_words_one_message_and_the_phase_extras() {
        let stats = CommStats::new();
        record_p2p(&stats, CommPhase::OverlapDetection, 25);
        record_p2p(&stats, CommPhase::OverlapDetection, 10);
        assert_eq!(stats.words(CommPhase::OverlapDetection), 35);
        assert_eq!(stats.messages(CommPhase::OverlapDetection), 2);
        assert_eq!(stats.extra(&p2p_words_key(CommPhase::OverlapDetection)), 35);
        assert_eq!(stats.extra(&p2p_messages_key(CommPhase::OverlapDetection)), 2);
        // Other phases see nothing.
        assert_eq!(stats.extra(&p2p_messages_key(CommPhase::KmerCounting)), 0);
        assert_eq!(
            stats.snapshot().phase(CommPhase::OverlapDetection).max_words_per_rank,
            25
        );
    }

    #[test]
    fn empty_p2p_sends_are_free_unlike_empty_broadcasts() {
        // Point-to-point convention: a sender skips empty buffers entirely.
        let stats = CommStats::new();
        record_p2p(&stats, CommPhase::Other, 0);
        assert_eq!(stats.words(CommPhase::Other), 0);
        assert_eq!(stats.messages(CommPhase::Other), 0);
        assert_eq!(stats.extra(&p2p_messages_key(CommPhase::Other)), 0);
        // Broadcast convention: the collective is posted regardless of payload.
        record_broadcast(&stats, CommPhase::Other, 0, 3);
        assert_eq!(stats.words(CommPhase::Other), 0);
        assert_eq!(stats.messages(CommPhase::Other), 2);
    }

    #[test]
    fn rank_max_sees_receive_side_skew() {
        // Every rank sends one word, but rank 0 receives everything (a hash
        // hot spot): the per-rank max must reflect the receive side.
        let stats = CommStats::new();
        let send = square_send(&[
            &[&[], &[], &[]],
            &[&[10], &[], &[]],
            &[&[20], &[], &[]],
        ]);
        let _ = alltoallv_counted(send, &stats, CommPhase::KmerCounting, 1);
        let snap = stats.snapshot().phase(CommPhase::KmerCounting);
        assert_eq!(snap.words, 2);
        assert_eq!(snap.max_words_per_rank, 2, "rank 0 received 2 words");
    }

    #[test]
    fn words_of_rounds_up_to_whole_words() {
        assert_eq!(words_of::<u8>(), 1);
        assert_eq!(words_of::<u64>(), 1);
        assert_eq!(words_of::<[u64; 2]>(), 2);
        assert_eq!(words_of::<[u8; 17]>(), 3);
        assert_eq!(words_of::<()>(), 0);
    }

    #[test]
    #[should_panic(expected = "buffers")]
    fn ragged_send_matrices_are_rejected() {
        let stats = CommStats::new();
        let send: Vec<Vec<Vec<u8>>> = vec![vec![vec![]], vec![vec![], vec![]]];
        let _ = alltoallv_counted(send, &stats, CommPhase::Other, 1);
    }

    #[test]
    fn collectives_append_spmd_trace_events_when_enabled() {
        let stats = CommStats::new();
        stats.enable_spmd_trace(3);
        let send = square_send(&[
            &[&[1], &[2, 3], &[4]],
            &[&[5, 6], &[], &[7]],
            &[&[8], &[9], &[]],
        ]);
        let _ = alltoallv_counted(send, &stats, CommPhase::KmerCounting, 1);
        record_broadcast(&stats, CommPhase::OverlapDetection, 10, 3);
        record_p2p(&stats, CommPhase::OverlapDetection, 25);
        // Single-member broadcasts and empty p2p sends stay invisible.
        record_broadcast(&stats, CommPhase::Other, 10, 1);
        record_p2p(&stats, CommPhase::Other, 0);

        let traces = stats.spmd_traces();
        assert_eq!(traces.len(), 3);
        crate::verify_spmd(&traces).expect("symmetric collectives are SPMD-consistent");
        for trace in &traces {
            assert_eq!(trace.events.len(), 3);
            assert_eq!(trace.events[0].kind, crate::CollectiveKind::Alltoallv);
            assert_eq!(trace.events[0].participants, 3);
            assert_eq!(trace.events[1].kind, crate::CollectiveKind::Broadcast);
            assert_eq!(trace.events[2].kind, crate::CollectiveKind::PointToPoint);
            assert_eq!(trace.events[2].participants, 2);
        }
        // The alltoallv event carries each rank's own sent words.
        assert_eq!(traces[0].events[0].words, 3);
        assert_eq!(traces[1].events[0].words, 3);
        assert_eq!(traces[2].events[0].words, 2);
        stats.assert_spmd();
    }

    #[test]
    fn tracing_is_off_by_default_and_costs_nothing() {
        let stats = CommStats::new();
        assert!(!stats.spmd_trace_enabled());
        record_broadcast(&stats, CommPhase::Other, 10, 4);
        assert!(stats.spmd_traces().is_empty());
        stats.assert_spmd(); // vacuous no-op when disabled
    }

    #[test]
    fn seeded_rank_divergence_is_caught_with_a_readable_diff() {
        let stats = CommStats::new();
        stats.enable_spmd_trace(4);
        record_broadcast(&stats, CommPhase::OverlapDetection, 8, 4);
        // Fault injection: rank 2 alone posts an extra collective, as a buggy
        // rank-dependent branch would.
        stats.trace_event_for_rank(
            2,
            CommPhase::OverlapDetection,
            crate::CollectiveKind::Broadcast,
            4,
            8,
        );
        record_p2p(&stats, CommPhase::OverlapDetection, 5);

        let err = crate::verify_spmd(&stats.spmd_traces()).unwrap_err();
        assert_eq!(err.rank, 2);
        assert_eq!(err.index, 1);
        let rendered = err.to_string();
        assert!(rendered.contains("rank 2 disagrees with rank 0"), "{rendered}");
        assert!(rendered.contains("PointToPoint"), "{rendered}");
        assert!(rendered.contains("Broadcast"), "{rendered}");
    }

    #[test]
    #[should_panic(expected = "SPMD protocol divergence")]
    fn assert_spmd_panics_on_divergence() {
        let stats = CommStats::new();
        stats.enable_spmd_trace(2);
        record_broadcast(&stats, CommPhase::Other, 1, 2);
        stats.trace_event_for_rank(1, CommPhase::Other, crate::CollectiveKind::PointToPoint, 2, 1);
        stats.assert_spmd();
    }
}

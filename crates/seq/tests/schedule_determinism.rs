//! Re-pins the streaming k-mer counter's determinism claim under adversarial
//! steal schedules.
//!
//! `count_kmers_streaming` runs both counting passes as supersteps whose
//! per-batch shuffles and owner-side folds ride the work-stealing pool; the
//! PR-8 claim is that the resulting table is bit-identical to the monolithic
//! counter at any batch size and thread count.  Here the schedule explorer
//! additionally permutes the pool's chunk-claim order (all 3-/4-chunk
//! permutations, or seeded large shuffles on the CI main preset) with yield
//! points injected before every claim.

use dibella_dist::CommStats;
use dibella_seq::stream::{read_set_batches, IngestBudget};
use dibella_seq::{count_kmers_distributed, count_kmers_streaming, DatasetSpec, KmerSelection};
use dibella_testutil::{assert_schedule_determinism, SchedulePreset};

#[test]
fn count_kmers_streaming_is_bit_identical_under_adversarial_schedules() {
    let ds = DatasetSpec::Tiny.generate_with_length(2_000, 21);
    let sel = KmerSelection { k: 9, min_count: 2, max_count: 50 };
    let budget = IngestBudget::with_batch_reads(7);

    // The monolithic counter is the fixed reference; every explored schedule
    // must reproduce it (which also re-proves streaming == monolithic).
    let reference: Vec<(u32, _, u32)> = {
        let stats = CommStats::new();
        count_kmers_distributed(&ds.reads, &sel, 4, &stats).iter().collect()
    };

    let explored = assert_schedule_determinism(SchedulePreset::from_env(), || {
        let stats = CommStats::new();
        let table = count_kmers_streaming(
            || Ok(read_set_batches(&ds.reads, budget)),
            &sel,
            4,
            &budget,
            &stats,
        )
        .expect("budget is per-batch and generous");
        let entries: Vec<(u32, _, u32)> = table.iter().collect();
        assert_eq!(entries, reference, "streaming must match the monolithic counter");
        entries
    });
    assert!(explored >= 30, "expected at least the exhaustive-small preset");
}

//! Pins the peak-memory contract of the streaming superstep ingest.
//!
//! The shared [`PeakAlloc`] counting allocator measures *real* resident
//! bytes (not the counter's internal estimate): streaming ingest under an
//! [`IngestBudget`] must stay under the budget, and the monolithic path on
//! the same input must demonstrably exceed it (the negative control that
//! proves the budget is binding, not vacuous).  This file holds a single
//! `#[test]` on purpose: the counter is global, and a sibling test
//! allocating concurrently would make the delta meaningless.

use dibella_dist::CommStats;
use dibella_seq::simulate::{generate_genome, simulate_reads, GenomeConfig, ReadSimConfig};
use dibella_seq::{
    count_kmers_distributed, count_kmers_streaming, fasta_batches, parse_fasta, write_fasta,
    IngestBudget, KmerSelection, KmerTable,
};
use dibella_testutil::PeakAlloc;

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc::new();

/// Hard budget the streaming ingest must honour and the monolithic path must
/// break: well above the streaming working set (one 32 KiB batch + its
/// exchange buffers + k-mer tables over a 10 kb genome), well below the
/// monolithic working set (the full ~1 MB read set plus all ~1M extracted
/// k-mers resident at once).
const BUDGET_BYTES: usize = 8 << 20;

#[test]
fn streaming_ingest_stays_under_a_budget_the_monolithic_path_exceeds() {
    // ~1 MB of read bases at depth 100 over a 10 kb error-free genome: the
    // k-mer tables (sized by the genome) are small relative to the input, so
    // resident memory is dominated by what each ingest path keeps alive.
    let genome = generate_genome(&GenomeConfig {
        length: 10_000,
        repeat_fraction: 0.0,
        repeat_length: 100,
        seed: 71,
    });
    let sim = ReadSimConfig {
        depth: 100.0,
        mean_read_length: 2_000,
        min_read_length: 500,
        read_length_sd: 300,
        error_rate: 0.0,
        seed: 72,
        ..ReadSimConfig::default()
    };
    let (reads, _) = simulate_reads(&genome, &sim);
    let text = write_fasta(&reads);
    drop(reads);
    drop(genome);
    assert!(text.len() > 512 * 1024, "dataset too small to discriminate: {}", text.len());

    let sel = KmerSelection { k: 11, min_count: 2, max_count: 10_000 };
    let nprocs = 4;

    // Streaming ingest under the budget: chunked parse, bounded batches, one
    // superstep per batch.  Real peak resident bytes (allocator-measured,
    // above the baseline of the input text) must stay under the budget.
    let budget = IngestBudget {
        max_batch_reads: 32,
        max_batch_bytes: 32 << 10,
        max_resident_bytes: BUDGET_BYTES,
    };
    let stats = CommStats::new();
    let scope = ALLOC.scope();
    let streamed = count_kmers_streaming(
        || Ok(fasta_batches(&text, 16 << 10, budget)),
        &sel,
        nprocs,
        &budget,
        &stats,
    )
    .unwrap();
    let streaming_peak = scope.peak_resident();
    assert!(
        streaming_peak <= BUDGET_BYTES as u64,
        "streaming ingest peaked at {streaming_peak} real resident bytes, over the \
         {BUDGET_BYTES}-byte budget"
    );
    // The counter's own estimate must also have stayed under the budget (it
    // would have returned Err otherwise) and been recorded.
    let estimated = stats.extra("ingest_resident_bytes_peak");
    assert!(estimated > 0 && estimated <= BUDGET_BYTES as u64);
    assert!(stats.extra("ingest_supersteps") > 1, "must have taken multiple supersteps");

    // Monolithic negative control: same input, whole-text parse and
    // whole-input two-pass counting.  Its peak must exceed the budget — that
    // is the memory wall the streaming path exists to avoid.
    let mono_stats = CommStats::new();
    let scope = ALLOC.scope();
    let mono_reads = parse_fasta(&text).unwrap();
    let mono = count_kmers_distributed(&mono_reads, &sel, nprocs, &mono_stats);
    let mono_peak = scope.peak_resident();
    drop(mono_reads);
    assert!(
        mono_peak > BUDGET_BYTES as u64,
        "monolithic ingest peaked at only {mono_peak} bytes — the {BUDGET_BYTES}-byte budget \
         is not discriminating"
    );

    // Same answer either way: the budget changes the memory shape, never the
    // k-mer table.
    assert_tables_identical(&streamed, &mono);
    eprintln!(
        "streaming peak {streaming_peak} B (estimate {estimated} B) vs monolithic peak \
         {mono_peak} B under a {BUDGET_BYTES} B budget"
    );
}

fn assert_tables_identical(a: &KmerTable, b: &KmerTable) {
    assert_eq!(a.len(), b.len(), "table sizes differ");
    for ((ca, ka, na), (cb, kb, nb)) in a.iter().zip(b.iter()) {
        assert_eq!((ca, ka, na), (cb, kb, nb), "tables diverge at column {ca}");
    }
}

//! A Bloom filter for singleton k-mer elimination.
//!
//! Section IV-C: "diBELLA 2D eliminates singletons using a Bloom filter during
//! k-mer counting".  The filter answers "have I seen this k-mer before?" with
//! no false negatives; a k-mer is only inserted into the counting hash table
//! the second time it is seen, so true singletons never occupy table memory.

use serde::{Deserialize, Serialize};

/// A fixed-size Bloom filter over 64-bit keys.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BloomFilter {
    bits: Vec<u64>,
    nbits: u64,
    nhashes: u32,
    inserted: u64,
}

impl BloomFilter {
    /// Create a filter sized for `expected_items` at the given false-positive
    /// rate (standard optimal sizing: `m = -n·ln(p)/ln(2)²`, `h = m/n·ln(2)`).
    pub fn with_rate(expected_items: usize, false_positive_rate: f64) -> Self {
        assert!(
            false_positive_rate > 0.0 && false_positive_rate < 1.0,
            "false positive rate must be in (0, 1)"
        );
        let n = expected_items.max(1) as f64;
        let ln2 = std::f64::consts::LN_2;
        let m = (-n * false_positive_rate.ln() / (ln2 * ln2)).ceil().max(64.0) as u64;
        let h = ((m as f64 / n) * ln2).round().clamp(1.0, 16.0) as u32;
        Self::new(m, h)
    }

    /// Create a filter with an explicit number of bits and hash functions.
    pub fn new(nbits: u64, nhashes: u32) -> Self {
        assert!(nbits > 0 && nhashes > 0);
        let words = nbits.div_ceil(64) as usize;
        Self { bits: vec![0u64; words], nbits, nhashes, inserted: 0 }
    }

    fn positions(&self, key: u64) -> impl Iterator<Item = u64> + '_ {
        // Double hashing (Kirsch–Mitzenmacher): h_i = h1 + i·h2.
        let h1 = splitmix(key);
        let h2 = splitmix(key ^ 0x9E3779B97F4A7C15) | 1;
        (0..self.nhashes as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2))) % self.nbits)
    }

    /// Insert a key; returns `true` if the key **might** have been present
    /// already (all bits were set), `false` if it was definitely new.
    pub fn insert(&mut self, key: u64) -> bool {
        let mut already = true;
        let positions: Vec<u64> = self.positions(key).collect();
        for pos in positions {
            let word = (pos / 64) as usize;
            let bit = 1u64 << (pos % 64);
            if self.bits[word] & bit == 0 {
                already = false;
                self.bits[word] |= bit;
            }
        }
        self.inserted += 1;
        already
    }

    /// Whether the key might have been inserted (false positives possible,
    /// false negatives impossible).
    pub fn contains(&self, key: u64) -> bool {
        self.positions(key).all(|pos| {
            let word = (pos / 64) as usize;
            self.bits[word] & (1u64 << (pos % 64)) != 0
        })
    }

    /// Number of bits in the filter.
    pub fn nbits(&self) -> u64 {
        self.nbits
    }

    /// Number of hash functions.
    pub fn nhashes(&self) -> u32 {
        self.nhashes
    }

    /// Number of insert operations performed.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Fraction of bits currently set (diagnostic for sizing).
    pub fn fill_ratio(&self) -> f64 {
        let set: u64 = self.bits.iter().map(|w| w.count_ones() as u64).sum();
        set as f64 / self.nbits as f64
    }
}

/// A scalable Bloom filter for streams of unknown cardinality.
///
/// The monolithic counter sizes its [`BloomFilter`] from the number of
/// incoming k-mers, which a streaming superstep ingest cannot know upfront.
/// `ScalableBloom` (Almeida et al., "Scalable Bloom Filters") keeps a chain
/// of fixed-size filters: inserts go to the newest filter, membership checks
/// consult the whole chain, and when the newest filter reaches its design
/// capacity a new filter with twice the capacity and a tightened
/// false-positive rate is appended.  The compounded false-positive rate stays
/// bounded by `rate / (1 - tightening)` with the 0.5 tightening ratio used
/// here, and there are still no false negatives.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalableBloom {
    stages: Vec<BloomFilter>,
    stage_capacity: usize,
    stage_new_keys: usize,
    stage_rate: f64,
}

impl ScalableBloom {
    /// A scalable filter whose first stage is sized for `initial_capacity`
    /// distinct keys at the given per-stage false-positive rate.
    pub fn with_rate(initial_capacity: usize, false_positive_rate: f64) -> Self {
        let cap = initial_capacity.max(64);
        Self {
            stages: vec![BloomFilter::with_rate(cap, false_positive_rate)],
            stage_capacity: cap,
            stage_new_keys: 0,
            stage_rate: false_positive_rate,
        }
    }

    /// Insert a key; returns `true` if the key **might** have been inserted
    /// before (in any stage), `false` if it was definitely new.
    pub fn insert(&mut self, key: u64) -> bool {
        // A hit in any sealed stage means "seen"; no need to re-insert.
        let newest = self.stages.len() - 1;
        if self.stages[..newest].iter().any(|s| s.contains(key)) {
            return true;
        }
        let already = self.stages[newest].insert(key);
        if !already {
            self.stage_new_keys += 1;
            if self.stage_new_keys >= self.stage_capacity {
                // Seal this stage and open one with twice the capacity at a
                // tightened rate, keeping the compounded rate bounded.
                self.stage_capacity *= 2;
                self.stage_rate *= 0.5;
                self.stages.push(BloomFilter::with_rate(self.stage_capacity, self.stage_rate));
                self.stage_new_keys = 0;
            }
        }
        already
    }

    /// Whether the key might have been inserted into any stage (false
    /// positives possible, false negatives impossible).
    pub fn contains(&self, key: u64) -> bool {
        self.stages.iter().any(|s| s.contains(key))
    }

    /// Number of chained stages (diagnostic: grows logarithmically with the
    /// number of distinct keys).
    pub fn stages(&self) -> usize {
        self.stages.len()
    }

    /// Approximate heap bytes held by the filter chain — the quantity the
    /// streaming ingest's resident-byte estimate charges for its filters.
    pub fn resident_bytes(&self) -> usize {
        self.stages.iter().map(|s| (s.nbits() as usize).div_ceil(8)).sum()
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::with_rate(1000, 0.01);
        for key in 0..1000u64 {
            bf.insert(key.wrapping_mul(0x5851F42D4C957F2D));
        }
        for key in 0..1000u64 {
            assert!(bf.contains(key.wrapping_mul(0x5851F42D4C957F2D)));
        }
    }

    #[test]
    fn first_insert_reports_new() {
        let mut bf = BloomFilter::with_rate(100, 0.01);
        assert!(!bf.insert(42));
        assert!(bf.insert(42), "second insert of the same key must report seen");
    }

    #[test]
    fn false_positive_rate_is_roughly_as_configured() {
        let mut bf = BloomFilter::with_rate(10_000, 0.01);
        for key in 0..10_000u64 {
            bf.insert(splitmix(key));
        }
        let mut false_positives = 0;
        let probes = 10_000u64;
        for key in 0..probes {
            if bf.contains(splitmix(key + 1_000_000)) {
                false_positives += 1;
            }
        }
        let rate = false_positives as f64 / probes as f64;
        assert!(rate < 0.05, "false positive rate {rate} too high for a 1% filter");
    }

    #[test]
    fn empty_filter_contains_nothing_set() {
        let bf = BloomFilter::new(1024, 3);
        assert!(!bf.contains(7));
        assert_eq!(bf.fill_ratio(), 0.0);
        assert_eq!(bf.inserted(), 0);
    }

    #[test]
    fn sizing_grows_with_item_count_and_shrinks_with_rate() {
        let small = BloomFilter::with_rate(100, 0.01);
        let large = BloomFilter::with_rate(10_000, 0.01);
        assert!(large.nbits() > small.nbits());
        let loose = BloomFilter::with_rate(1000, 0.1);
        let tight = BloomFilter::with_rate(1000, 0.001);
        assert!(tight.nbits() > loose.nbits());
        assert!(tight.nhashes() >= loose.nhashes());
    }

    proptest! {
        #[test]
        fn prop_inserted_keys_are_always_found(keys in proptest::collection::hash_set(any::<u64>(), 1..500)) {
            let mut bf = BloomFilter::with_rate(keys.len(), 0.01);
            for &k in &keys {
                bf.insert(k);
            }
            for &k in &keys {
                prop_assert!(bf.contains(k));
            }
        }
    }

    #[test]
    fn scalable_bloom_grows_past_initial_capacity_without_false_negatives() {
        // 64-key first stage, 10k distinct keys: the chain must grow and the
        // second insert of every key must report "seen".
        let mut sb = ScalableBloom::with_rate(64, 0.01);
        for key in 0..10_000u64 {
            sb.insert(splitmix(key));
        }
        assert!(sb.stages() > 1, "filter must have scaled");
        for key in 0..10_000u64 {
            assert!(sb.contains(splitmix(key)), "no false negatives after scaling");
            assert!(sb.insert(splitmix(key)), "re-insert must report seen");
        }
        assert!(sb.resident_bytes() > 0);
    }

    #[test]
    fn scalable_bloom_first_insert_reports_new() {
        let mut sb = ScalableBloom::with_rate(1000, 0.01);
        assert!(!sb.insert(42));
        assert!(sb.insert(42));
        assert!(!sb.contains(43));
    }

    #[test]
    fn scalable_bloom_compounded_false_positive_rate_stays_bounded() {
        // Tiny initial stage forces many scalings; the compounded FP rate
        // must stay near the configured 1%, not degrade per stage.
        let mut sb = ScalableBloom::with_rate(64, 0.01);
        for key in 0..20_000u64 {
            sb.insert(splitmix(key));
        }
        let mut false_positives = 0;
        let probes = 20_000u64;
        for key in 0..probes {
            if sb.contains(splitmix(key + 10_000_000)) {
                false_positives += 1;
            }
        }
        let rate = false_positives as f64 / probes as f64;
        assert!(rate < 0.05, "compounded false positive rate {rate} too high");
    }
}

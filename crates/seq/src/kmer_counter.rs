//! Two-pass distributed k-mer counting (Section IV-C of the paper).
//!
//! The counter mirrors the HipMer-style design diBELLA 2D uses:
//!
//! 1. every rank extracts the canonical k-mers of its block of reads and sends
//!    each k-mer to an owner rank chosen by hashing (`MPI_Alltoallv`);
//! 2. **pass 1**: owners insert incoming k-mers into a Bloom filter; a k-mer
//!    that hits the filter (seen at least twice) graduates to the local hash
//!    table — singletons never occupy table memory;
//! 3. **pass 2**: the same exchange is repeated and owners count occurrences
//!    of the k-mers that graduated;
//! 4. k-mers whose count falls outside the reliable range
//!    `[min_count, max_count]` are discarded (the BELLA-style upper bound `d`
//!    removes repeat-induced high-frequency k-mers);
//! 5. surviving k-mers receive consecutive column indices — they become the
//!    columns of the `|reads| x |k-mers|` matrix `A`.
//!
//! The k-mer exchange traffic is recorded under
//! [`CommPhase::KmerCounting`] with the paper's `k/4`-bytes-per-k-mer wire
//! format (2-bit packed), so the measured words can be compared against the
//! model `W = n·l·k/(4·P)` of Table I.

use crate::bloom::BloomFilter;
use crate::fasta::ReadSet;
use crate::kmer::{Kmer, KmerIter};
use dibella_dist::{alltoallv_counted, par_ranks, BlockDist, CommPhase, CommStats};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Reliable k-mer selection parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KmerSelection {
    /// k-mer length (the paper uses `k = 17`).
    pub k: usize,
    /// Minimum count for a reliable k-mer (2 discards singletons).
    pub min_count: u32,
    /// Maximum count for a reliable k-mer (discards repeat-induced k-mers).
    pub max_count: u32,
}

impl Default for KmerSelection {
    fn default() -> Self {
        Self { k: 17, min_count: 2, max_count: 8 }
    }
}

impl KmerSelection {
    /// The experimental setting of the paper: `k = 17`, maximum k-mer
    /// frequency 4 (Section VI).
    pub fn paper_default() -> Self {
        Self { k: 17, min_count: 2, max_count: 4 }
    }

    /// A BELLA-style upper frequency bound derived from dataset statistics:
    /// the expected number of error-free occurrences of a true genomic k-mer
    /// is `d·(1-e)^k`; k-mers far above that are almost surely repeats.
    pub fn with_bella_bound(k: usize, depth: f64, error_rate: f64) -> Self {
        let expected = depth * (1.0 - error_rate).powi(k as i32);
        let bound = (expected + 2.0 * expected.sqrt()).ceil().max(4.0) as u32;
        Self { k, min_count: 2, max_count: bound }
    }
}

/// The reliable k-mer table: canonical k-mers, their counts, and their column
/// indices in the `|reads| x |k-mers|` matrix `A`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KmerTable {
    kmers: Vec<Kmer>,
    counts: Vec<u32>,
    #[serde(skip)]
    index: HashMap<Kmer, u32>,
}

impl KmerTable {
    fn from_sorted(kmers: Vec<Kmer>, counts: Vec<u32>) -> Self {
        let index = kmers.iter().enumerate().map(|(i, k)| (*k, i as u32)).collect();
        Self { kmers, counts, index }
    }

    /// Number of reliable k-mers (`m` in the paper's notation).
    pub fn len(&self) -> usize {
        self.kmers.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.kmers.is_empty()
    }

    /// Column index of a canonical k-mer, if reliable.
    pub fn column_of(&self, canonical: &Kmer) -> Option<u32> {
        self.index.get(canonical).copied()
    }

    /// The canonical k-mer at a column index.
    pub fn kmer_at(&self, column: u32) -> Kmer {
        self.kmers[column as usize]
    }

    /// The count of the k-mer at a column index.
    pub fn count_at(&self, column: u32) -> u32 {
        self.counts[column as usize]
    }

    /// Iterate over `(column, kmer, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Kmer, u32)> + '_ {
        self.kmers
            .iter()
            .zip(self.counts.iter())
            .enumerate()
            .map(|(i, (k, c))| (i as u32, *k, *c))
    }

    /// Average number of reads containing a reliable k-mer (`a` in Table II:
    /// the density of `A`).
    pub fn mean_count(&self) -> f64 {
        if self.counts.is_empty() {
            0.0
        } else {
            self.counts.iter().map(|&c| c as f64).sum::<f64>() / self.counts.len() as f64
        }
    }
}

/// Serial reference k-mer counter (used by tests and the minimizer baseline).
pub fn count_kmers_serial(reads: &ReadSet, selection: &KmerSelection) -> KmerTable {
    let mut counts: HashMap<Kmer, u32> = HashMap::new();
    for (_, rec) in reads.iter() {
        if rec.seq.len() < selection.k {
            continue;
        }
        for (_, kmer) in KmerIter::new(&rec.seq, selection.k) {
            *counts.entry(kmer.canonical().kmer).or_insert(0) += 1;
        }
    }
    build_table(counts, selection)
}

/// Distributed two-pass k-mer counter over `nprocs` virtual ranks.
///
/// Reads are block-partitioned over ranks; canonical k-mers are exchanged to
/// hash-assigned owner ranks twice (Bloom pass, then counting pass), exactly
/// as the paper's k-mer counter does.  Returns the same table as
/// [`count_kmers_serial`] for any `nprocs`.
pub fn count_kmers_distributed(
    reads: &ReadSet,
    selection: &KmerSelection,
    nprocs: usize,
    stats: &CommStats,
) -> KmerTable {
    assert!(nprocs > 0);
    let read_dist = BlockDist::new(reads.len(), nprocs);
    // The wire format is 2-bit packed, i.e. k/4 bytes per k-mer: that is
    // ceil(k/32) 8-byte words.
    let words_per_kmer = (selection.k as u64).div_ceil(32);

    // Each rank extracts the canonical k-mers of its reads and buckets them by
    // owner rank (hash of the canonical k-mer).
    let extract = || -> Vec<Vec<Vec<Kmer>>> {
        par_ranks(nprocs, |rank| {
            let mut bufs: Vec<Vec<Kmer>> = (0..nprocs).map(|_| Vec::new()).collect();
            for read_idx in read_dist.range(rank) {
                let seq = reads.seq(read_idx);
                if seq.len() < selection.k {
                    continue;
                }
                for (_, kmer) in KmerIter::new(seq, selection.k) {
                    let canon = kmer.canonical().kmer;
                    let owner = (canon.hash64() % nprocs as u64) as usize;
                    bufs[owner].push(canon);
                }
            }
            bufs
        })
    };

    // Pass 1: Bloom filter pass.  Owners learn which of their k-mers occur at
    // least twice.
    let pass1 = alltoallv_counted(extract(), stats, CommPhase::KmerCounting, words_per_kmer);
    let candidates: Vec<Vec<Kmer>> = pass1
        .into_iter()
        .map(|incoming| {
            let mut bloom = BloomFilter::with_rate(incoming.len().max(64), 0.01);
            let mut seen_twice: HashMap<Kmer, ()> = HashMap::new();
            for kmer in incoming {
                if bloom.insert(kmer.packed()) {
                    seen_twice.entry(kmer).or_insert(());
                }
            }
            seen_twice.into_keys().collect()
        })
        .collect();

    // Pass 2: counting pass over the same exchange.
    let pass2 = alltoallv_counted(extract(), stats, CommPhase::KmerCounting, words_per_kmer);
    let per_rank_counts: Vec<HashMap<Kmer, u32>> = pass2
        .into_iter()
        .zip(candidates)
        .map(|(incoming, cands)| {
            let cand_set: std::collections::HashSet<Kmer> = cands.into_iter().collect();
            let mut counts: HashMap<Kmer, u32> = HashMap::with_capacity(cand_set.len());
            for kmer in incoming {
                if cand_set.contains(&kmer) {
                    *counts.entry(kmer).or_insert(0) += 1;
                }
            }
            counts
        })
        .collect();

    // Because the Bloom filter may produce false positives on the *first*
    // occurrence of a k-mer, a candidate's pass-2 count can still be 1; the
    // reliable-range filter below removes those, matching the serial counter.
    let mut merged: HashMap<Kmer, u32> = HashMap::new();
    for counts in per_rank_counts {
        for (k, c) in counts {
            *merged.entry(k).or_insert(0) += c;
        }
    }
    build_table(merged, selection)
}

fn build_table(counts: HashMap<Kmer, u32>, selection: &KmerSelection) -> KmerTable {
    let mut reliable: Vec<(Kmer, u32)> = counts
        .into_iter()
        .filter(|(_, c)| *c >= selection.min_count && *c <= selection.max_count)
        .collect();
    reliable.sort_by_key(|(k, _)| *k);
    let (kmers, counts): (Vec<_>, Vec<_>) = reliable.into_iter().unzip();
    KmerTable::from_sorted(kmers, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fasta::{parse_fasta, ReadRecord};
    use crate::simulate::DatasetSpec;
    use proptest::prelude::*;

    fn reads_from(seqs: &[&str]) -> ReadSet {
        let mut rs = ReadSet::new();
        for (i, s) in seqs.iter().enumerate() {
            rs.push(ReadRecord { name: format!("r{i}"), seq: s.parse().unwrap() });
        }
        rs
    }

    #[test]
    fn serial_counts_simple_case() {
        // "ACGTA" with k=3 has k-mers ACG, CGT, GTA.  Canonically CGT collapses
        // onto ACG (its reverse complement), so per read: ACG x2, GTA x1.
        // With two identical reads: ACG -> 4, GTA -> 2.
        let reads = reads_from(&["ACGTA", "ACGTA"]);
        let sel = KmerSelection { k: 3, min_count: 2, max_count: 100 };
        let table = count_kmers_serial(&reads, &sel);
        assert_eq!(table.len(), 2);
        let acg = Kmer::from_ascii(b"ACG").unwrap().canonical().kmer;
        let gta = Kmer::from_ascii(b"GTA").unwrap().canonical().kmer;
        assert_eq!(table.count_at(table.column_of(&acg).unwrap()), 4);
        assert_eq!(table.count_at(table.column_of(&gta).unwrap()), 2);
    }

    #[test]
    fn singletons_are_discarded() {
        let reads = reads_from(&["AAAAAAAA", "CCCCCCCC"]);
        let sel = KmerSelection { k: 4, min_count: 2, max_count: 100 };
        let table = count_kmers_serial(&reads, &sel);
        // AAAA appears 5 times in read 0; CCCC appears 5 times in read 1
        // (canonical of GGGG too).  Both are >= 2 so both survive.
        assert_eq!(table.len(), 2);

        let reads2 = reads_from(&["ACGTACGA"]);
        let sel2 = KmerSelection { k: 8, min_count: 2, max_count: 100 };
        let table2 = count_kmers_serial(&reads2, &sel2);
        assert!(table2.is_empty(), "a k-mer occurring once must be discarded");
    }

    #[test]
    fn high_frequency_kmers_are_discarded() {
        let reads = reads_from(&["AAAAAAAAAAAAAAAA"]);
        let sel = KmerSelection { k: 4, min_count: 2, max_count: 5 };
        let table = count_kmers_serial(&reads, &sel);
        assert!(table.is_empty(), "a 13-copy k-mer must exceed max_count=5");
    }

    #[test]
    fn canonical_forms_merge_forward_and_reverse_occurrences() {
        // Read 2 is the reverse complement of read 1: every canonical k-mer
        // should be counted twice.
        let fwd = "ACGGTTACGGAC";
        let rc: String = crate::dna::DnaSeq::from_ascii(fwd.as_bytes())
            .unwrap()
            .reverse_complement()
            .to_ascii();
        let reads = reads_from(&[fwd, &rc]);
        let sel = KmerSelection { k: 5, min_count: 2, max_count: 100 };
        let table = count_kmers_serial(&reads, &sel);
        assert!(!table.is_empty());
        for (_, _, c) in table.iter() {
            assert!(c >= 2, "forward and reverse occurrences must merge");
        }
    }

    #[test]
    fn column_lookup_is_consistent() {
        let reads = reads_from(&["ACGTACGTACG", "ACGTACGTACG"]);
        let sel = KmerSelection { k: 4, min_count: 2, max_count: 100 };
        let table = count_kmers_serial(&reads, &sel);
        for (col, kmer, _) in table.iter() {
            assert_eq!(table.column_of(&kmer), Some(col));
            assert_eq!(table.kmer_at(col), kmer);
        }
        let absent = Kmer::from_ascii(b"TTTT").unwrap().canonical().kmer;
        if table.column_of(&absent).is_some() {
            // Only possible if TTTT/AAAA actually occurs in the reads; it does not.
            panic!("absent k-mer must not have a column");
        }
    }

    #[test]
    fn distributed_matches_serial_on_simulated_data() {
        let ds = DatasetSpec::Tiny.generate(7);
        let sel = KmerSelection { k: 11, min_count: 2, max_count: 30 };
        let serial = count_kmers_serial(&ds.reads, &sel);
        for nprocs in [1usize, 2, 4, 9] {
            let stats = CommStats::new();
            let dist = count_kmers_distributed(&ds.reads, &sel, nprocs, &stats);
            assert_eq!(dist.len(), serial.len(), "table size mismatch at P={nprocs}");
            for (col, kmer, count) in serial.iter() {
                let dcol = dist.column_of(&kmer).expect("k-mer missing in distributed table");
                assert_eq!(dist.count_at(dcol), count, "count mismatch for column {col}");
            }
        }
    }

    #[test]
    fn distributed_communication_is_recorded_and_scales_with_ranks() {
        let ds = DatasetSpec::Tiny.generate(8);
        let sel = KmerSelection { k: 11, min_count: 2, max_count: 30 };
        let stats1 = CommStats::new();
        let _ = count_kmers_distributed(&ds.reads, &sel, 1, &stats1);
        assert_eq!(stats1.words(CommPhase::KmerCounting), 0, "single rank exchanges nothing");
        let stats4 = CommStats::new();
        let _ = count_kmers_distributed(&ds.reads, &sel, 4, &stats4);
        assert!(stats4.words(CommPhase::KmerCounting) > 0);
        assert!(stats4.messages(CommPhase::KmerCounting) > 0);
    }

    #[test]
    fn bella_bound_tracks_depth_and_error() {
        let low_depth = KmerSelection::with_bella_bound(17, 10.0, 0.15);
        let high_depth = KmerSelection::with_bella_bound(17, 40.0, 0.13);
        assert!(high_depth.max_count > low_depth.max_count);
        assert!(low_depth.max_count >= 4);
        assert_eq!(KmerSelection::paper_default().max_count, 4);
        assert_eq!(KmerSelection::paper_default().k, 17);
    }

    #[test]
    fn reads_shorter_than_k_are_skipped() {
        let reads = parse_fasta(">a\nACG\n>b\nACGTACGTAC\n>c\nACGTACGTAC\n").unwrap();
        let sel = KmerSelection { k: 5, min_count: 2, max_count: 100 };
        let table = count_kmers_serial(&reads, &sel);
        assert!(!table.is_empty());
        // No panic and the 3-base read contributed nothing.
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn prop_distributed_equals_serial(
            seed in 0u64..200,
            nprocs in 1usize..6,
            k in 4usize..10,
        ) {
            let ds = DatasetSpec::Tiny.generate_with_length(2_000, seed);
            let sel = KmerSelection { k, min_count: 2, max_count: 50 };
            let serial = count_kmers_serial(&ds.reads, &sel);
            let stats = CommStats::new();
            let dist = count_kmers_distributed(&ds.reads, &sel, nprocs, &stats);
            prop_assert_eq!(serial.len(), dist.len());
            for (_, kmer, count) in serial.iter() {
                let col = dist.column_of(&kmer);
                prop_assert!(col.is_some());
                prop_assert_eq!(dist.count_at(col.unwrap()), count);
            }
        }
    }
}

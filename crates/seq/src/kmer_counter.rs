//! Two-pass distributed k-mer counting (Section IV-C of the paper).
//!
//! The counter mirrors the HipMer-style design diBELLA 2D uses:
//!
//! 1. every rank extracts the canonical k-mers of its block of reads and sends
//!    each k-mer to an owner rank chosen by hashing (`MPI_Alltoallv`);
//! 2. **pass 1**: owners insert incoming k-mers into a Bloom filter; a k-mer
//!    that hits the filter (seen at least twice) graduates to the local hash
//!    table — singletons never occupy table memory;
//! 3. **pass 2**: the same exchange is repeated and owners count occurrences
//!    of the k-mers that graduated;
//! 4. k-mers whose count falls outside the reliable range
//!    `[min_count, max_count]` are discarded (the BELLA-style upper bound `d`
//!    removes repeat-induced high-frequency k-mers);
//! 5. surviving k-mers receive consecutive column indices — they become the
//!    columns of the `|reads| x |k-mers|` matrix `A`.
//!
//! The k-mer exchange traffic is recorded under
//! [`CommPhase::KmerCounting`] with the paper's `k/4`-bytes-per-k-mer wire
//! format (2-bit packed), so the measured words can be compared against the
//! model `W = n·l·k/(4·P)` of Table I.

use crate::bloom::{BloomFilter, ScalableBloom};
use crate::fasta::ReadSet;
use crate::kmer::{Kmer, KmerIter};
use crate::stream::{IngestBudget, ReadBatch};
use dibella_dist::extras::{
    INGEST_BATCH_BYTES_PEAK_KEY, INGEST_RESIDENT_BYTES_PEAK_KEY, INGEST_SUPERSTEPS_KEY,
};
use dibella_dist::{alltoallv_counted, par_ranks, BlockDist, CommPhase, CommStats};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Reliable k-mer selection parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KmerSelection {
    /// k-mer length (the paper uses `k = 17`).
    pub k: usize,
    /// Minimum count for a reliable k-mer (2 discards singletons).
    pub min_count: u32,
    /// Maximum count for a reliable k-mer (discards repeat-induced k-mers).
    pub max_count: u32,
}

impl Default for KmerSelection {
    fn default() -> Self {
        Self { k: 17, min_count: 2, max_count: 8 }
    }
}

impl KmerSelection {
    /// The experimental setting of the paper: `k = 17`, maximum k-mer
    /// frequency 4 (Section VI).
    pub fn paper_default() -> Self {
        Self { k: 17, min_count: 2, max_count: 4 }
    }

    /// A BELLA-style upper frequency bound derived from dataset statistics:
    /// the expected number of error-free occurrences of a true genomic k-mer
    /// is `d·(1-e)^k`; k-mers far above that are almost surely repeats.
    pub fn with_bella_bound(k: usize, depth: f64, error_rate: f64) -> Self {
        let expected = depth * (1.0 - error_rate).powi(k as i32);
        let bound = (expected + 2.0 * expected.sqrt()).ceil().max(4.0) as u32;
        Self { k, min_count: 2, max_count: bound }
    }
}

/// The reliable k-mer table: canonical k-mers, their counts, and their column
/// indices in the `|reads| x |k-mers|` matrix `A`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KmerTable {
    kmers: Vec<Kmer>,
    counts: Vec<u32>,
    #[serde(skip)]
    index: HashMap<Kmer, u32>,
}

impl KmerTable {
    fn from_sorted(kmers: Vec<Kmer>, counts: Vec<u32>) -> Self {
        let index = kmers.iter().enumerate().map(|(i, k)| (*k, i as u32)).collect();
        Self { kmers, counts, index }
    }

    /// Number of reliable k-mers (`m` in the paper's notation).
    pub fn len(&self) -> usize {
        self.kmers.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.kmers.is_empty()
    }

    /// Column index of a canonical k-mer, if reliable.
    pub fn column_of(&self, canonical: &Kmer) -> Option<u32> {
        self.index.get(canonical).copied()
    }

    /// The canonical k-mer at a column index.
    pub fn kmer_at(&self, column: u32) -> Kmer {
        self.kmers[column as usize]
    }

    /// The count of the k-mer at a column index.
    pub fn count_at(&self, column: u32) -> u32 {
        self.counts[column as usize]
    }

    /// Iterate over `(column, kmer, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Kmer, u32)> + '_ {
        self.kmers
            .iter()
            .zip(self.counts.iter())
            .enumerate()
            .map(|(i, (k, c))| (i as u32, *k, *c))
    }

    /// Average number of reads containing a reliable k-mer (`a` in Table II:
    /// the density of `A`).
    pub fn mean_count(&self) -> f64 {
        if self.counts.is_empty() {
            0.0
        } else {
            self.counts.iter().map(|&c| c as f64).sum::<f64>() / self.counts.len() as f64
        }
    }
}

/// Serial reference k-mer counter (used by tests and the minimizer baseline).
pub fn count_kmers_serial(reads: &ReadSet, selection: &KmerSelection) -> KmerTable {
    let mut counts: HashMap<Kmer, u32> = HashMap::new();
    for (_, rec) in reads.iter() {
        if rec.seq.len() < selection.k {
            continue;
        }
        for (_, kmer) in KmerIter::new(&rec.seq, selection.k) {
            *counts.entry(kmer.canonical().kmer).or_insert(0) += 1;
        }
    }
    build_table(counts, selection)
}

/// Distributed two-pass k-mer counter over `nprocs` virtual ranks.
///
/// Reads are block-partitioned over ranks; canonical k-mers are exchanged to
/// hash-assigned owner ranks twice (Bloom pass, then counting pass), exactly
/// as the paper's k-mer counter does.  Returns the same table as
/// [`count_kmers_serial`] for any `nprocs`.
pub fn count_kmers_distributed(
    reads: &ReadSet,
    selection: &KmerSelection,
    nprocs: usize,
    stats: &CommStats,
) -> KmerTable {
    assert!(nprocs > 0);
    let read_dist = BlockDist::new(reads.len(), nprocs);
    // The wire format is 2-bit packed, i.e. k/4 bytes per k-mer: that is
    // ceil(k/32) 8-byte words.
    let words_per_kmer = (selection.k as u64).div_ceil(32);

    // Each rank extracts the canonical k-mers of its reads and buckets them by
    // owner rank (hash of the canonical k-mer).
    let extract = || -> Vec<Vec<Vec<Kmer>>> {
        par_ranks(nprocs, |rank| {
            let mut bufs: Vec<Vec<Kmer>> = (0..nprocs).map(|_| Vec::new()).collect();
            for read_idx in read_dist.range(rank) {
                let seq = reads.seq(read_idx);
                if seq.len() < selection.k {
                    continue;
                }
                for (_, kmer) in KmerIter::new(seq, selection.k) {
                    let canon = kmer.canonical().kmer;
                    let owner = (canon.hash64() % nprocs as u64) as usize;
                    bufs[owner].push(canon);
                }
            }
            bufs
        })
    };

    // Pass 1: Bloom filter pass.  Owners learn which of their k-mers occur at
    // least twice.
    let pass1 = alltoallv_counted(extract(), stats, CommPhase::KmerCounting, words_per_kmer);
    let candidates: Vec<Vec<Kmer>> = pass1
        .into_iter()
        .map(|incoming| {
            let mut bloom = BloomFilter::with_rate(incoming.len().max(64), 0.01);
            let mut seen_twice: HashMap<Kmer, ()> = HashMap::new();
            for kmer in incoming {
                if bloom.insert(kmer.packed()) {
                    seen_twice.entry(kmer).or_insert(());
                }
            }
            seen_twice.into_keys().collect()
        })
        .collect();

    // Pass 2: counting pass over the same exchange.
    let pass2 = alltoallv_counted(extract(), stats, CommPhase::KmerCounting, words_per_kmer);
    let per_rank_counts: Vec<HashMap<Kmer, u32>> = pass2
        .into_iter()
        .zip(candidates)
        .map(|(incoming, cands)| {
            let cand_set: std::collections::HashSet<Kmer> = cands.into_iter().collect();
            let mut counts: HashMap<Kmer, u32> = HashMap::with_capacity(cand_set.len());
            for kmer in incoming {
                if cand_set.contains(&kmer) {
                    *counts.entry(kmer).or_insert(0) += 1;
                }
            }
            counts
        })
        .collect();

    // Because the Bloom filter may produce false positives on the *first*
    // occurrence of a k-mer, a candidate's pass-2 count can still be 1; the
    // reliable-range filter below removes those, matching the serial counter.
    let mut merged: HashMap<Kmer, u32> = HashMap::new();
    for counts in per_rank_counts {
        for (k, c) in counts {
            *merged.entry(k).or_insert(0) += c;
        }
    }
    build_table(merged, selection)
}

/// Streaming superstep variant of [`count_kmers_distributed`]: consumes the
/// input as bounded [`ReadBatch`]es instead of a resident [`ReadSet`].
///
/// Each batch is one BSP **superstep**: every rank extracts the canonical
/// k-mers of its share of the batch, exchanges them to hash-assigned owners
/// via one `alltoallv`, and the owners fold the incoming k-mers into their
/// per-rank state before the next batch is touched — at no point is more
/// than one batch (plus its in-flight exchange buffers) resident.  The
/// two-pass structure is preserved across supersteps:
///
/// * **pass 1** feeds a [`ScalableBloom`] per owner (sized for an unknown
///   stream, unlike the monolithic counter's count-sized [`BloomFilter`]);
///   k-mers seen at least twice anywhere in the stream graduate to the
///   owner's candidate set;
/// * **pass 2** re-streams the same input (`batches` is called once per
///   pass) and counts occurrences of the graduated candidates.
///
/// For `selection.min_count >= 2` (the paper's setting) the returned table is
/// **bit-identical** to [`count_kmers_distributed`] and [`count_kmers_serial`]
/// at every batch size and thread count: Bloom false positives only graduate
/// extra *singletons*, whose full pass-2 count of 1 is then discarded by the
/// reliable-range filter, and true `count >= 2` k-mers always graduate (no
/// false negatives).
///
/// Resource accounting under `budget`:
///
/// * the estimated resident bytes of every superstep (current batch +
///   exchange buffers on both sides + per-owner filter/candidate/count
///   state) are checked against `budget.max_resident_bytes`; exceeding it is
///   an `Err`, never silent growth;
/// * [`CommStats`] gains three extras: `ingest_supersteps` (batches per
///   pass), `ingest_batch_bytes_peak` (largest batch) and
///   `ingest_resident_bytes_peak` (peak of the resident estimate).
///
/// Both passes must observe the same stream: if the second call to `batches`
/// yields a different superstep or read count, the ingest fails.
pub fn count_kmers_streaming<I, F>(
    mut batches: F,
    selection: &KmerSelection,
    nprocs: usize,
    budget: &IngestBudget,
    stats: &CommStats,
) -> Result<KmerTable, String>
where
    I: Iterator<Item = Result<ReadBatch, String>>,
    F: FnMut() -> Result<I, String>,
{
    assert!(nprocs > 0);
    let words_per_kmer = (selection.k as u64).div_ceil(32);
    let mut peaks = IngestPeaks::default();

    // Pass 1: Bloom pass, one superstep per batch.  Owner state (filter +
    // candidate set) persists across supersteps so k-mers whose occurrences
    // land in different batches still graduate.
    let mut blooms: Vec<ScalableBloom> =
        (0..nprocs).map(|_| ScalableBloom::with_rate(1 << 12, 0.01)).collect();
    let mut candidates: Vec<HashSet<Kmer>> = vec![HashSet::new(); nprocs];
    let mut pass1_steps = 0u64;
    let mut pass1_reads = 0usize;
    for batch in batches()? {
        let batch = batch?;
        if batch.is_empty() {
            continue;
        }
        pass1_steps += 1;
        pass1_reads += batch.len();
        let send = extract_batch(&batch, selection, nprocs);
        let owner_state: u64 = blooms.iter().map(|b| b.resident_bytes() as u64).sum::<u64>()
            + kmer_set_bytes(&candidates);
        peaks.observe(&batch, &send, owner_state, budget)?;
        let incoming = alltoallv_counted(send, stats, CommPhase::KmerCounting, words_per_kmer);
        for (owner, kmers) in incoming.into_iter().enumerate() {
            for kmer in kmers {
                if blooms[owner].insert(kmer.packed()) {
                    candidates[owner].insert(kmer);
                }
            }
        }
    }
    // The filters have done their job; only the candidate sets survive into
    // pass 2, so the resident estimate drops accordingly.
    drop(blooms);

    // Pass 2: counting pass over a fresh stream of the same input.
    let mut counts: Vec<HashMap<Kmer, u32>> =
        candidates.iter().map(|c| HashMap::with_capacity(c.len())).collect();
    let mut pass2_steps = 0u64;
    let mut pass2_reads = 0usize;
    for batch in batches()? {
        let batch = batch?;
        if batch.is_empty() {
            continue;
        }
        pass2_steps += 1;
        pass2_reads += batch.len();
        let send = extract_batch(&batch, selection, nprocs);
        let owner_state: u64 = kmer_set_bytes(&candidates)
            + counts
                .iter()
                .map(|c| (c.len() * (std::mem::size_of::<Kmer>() + 4)) as u64 * 2)
                .sum::<u64>();
        peaks.observe(&batch, &send, owner_state, budget)?;
        let incoming = alltoallv_counted(send, stats, CommPhase::KmerCounting, words_per_kmer);
        for (owner, kmers) in incoming.into_iter().enumerate() {
            for kmer in kmers {
                if candidates[owner].contains(&kmer) {
                    *counts[owner].entry(kmer).or_insert(0) += 1;
                }
            }
        }
    }
    if pass2_steps != pass1_steps || pass2_reads != pass1_reads {
        return Err(format!(
            "streaming input changed between passes: pass 1 saw {pass1_reads} reads in \
             {pass1_steps} supersteps, pass 2 saw {pass2_reads} reads in {pass2_steps}"
        ));
    }

    stats.max_extra(INGEST_SUPERSTEPS_KEY, pass1_steps);
    stats.max_extra(INGEST_BATCH_BYTES_PEAK_KEY, peaks.batch_bytes);
    stats.max_extra(INGEST_RESIDENT_BYTES_PEAK_KEY, peaks.resident_bytes);

    // Owners partition the k-mer space by hash, so the per-owner count maps
    // are disjoint and merging is a plain union.
    let mut merged: HashMap<Kmer, u32> = HashMap::new();
    for owner_counts in counts {
        merged.extend(owner_counts);
    }
    Ok(build_table(merged, selection))
}

/// One superstep's extraction: every rank walks its block of the batch and
/// buckets canonical k-mers by owner rank.  The returned buffers are moved
/// into the exchange (consumed, not cloned), so a superstep's send side is
/// resident exactly once.
fn extract_batch(
    batch: &ReadBatch,
    selection: &KmerSelection,
    nprocs: usize,
) -> Vec<Vec<Vec<Kmer>>> {
    let batch_dist = BlockDist::new(batch.len(), nprocs);
    par_ranks(nprocs, |rank| {
        let mut bufs: Vec<Vec<Kmer>> = (0..nprocs).map(|_| Vec::new()).collect();
        for idx in batch_dist.range(rank) {
            let seq = &batch.records[idx].seq;
            if seq.len() < selection.k {
                continue;
            }
            for (_, kmer) in KmerIter::new(seq, selection.k) {
                let canon = kmer.canonical().kmer;
                let owner = (canon.hash64() % nprocs as u64) as usize;
                bufs[owner].push(canon);
            }
        }
        bufs
    })
}

/// Rough heap bytes of the per-owner candidate sets (2x for hash-table
/// overhead — an estimate, cross-checked by the allocator-based tests).
fn kmer_set_bytes(sets: &[HashSet<Kmer>]) -> u64 {
    sets.iter().map(|s| (s.len() * std::mem::size_of::<Kmer>()) as u64 * 2).sum()
}

/// Running peaks of the streaming ingest's resident-byte estimate.
#[derive(Default)]
struct IngestPeaks {
    batch_bytes: u64,
    resident_bytes: u64,
}

impl IngestPeaks {
    /// Fold one superstep into the peaks and enforce the resident budget.
    ///
    /// The estimate charges the batch itself, the exchange buffers twice
    /// (send and receive sides are briefly co-resident inside the
    /// all-to-all) and the persistent owner state.
    fn observe(
        &mut self,
        batch: &ReadBatch,
        send: &[Vec<Vec<Kmer>>],
        owner_state: u64,
        budget: &IngestBudget,
    ) -> Result<(), String> {
        let batch_bytes = batch.bytes() as u64;
        let exchange_bytes: u64 = send
            .iter()
            .flatten()
            .map(|buf| (buf.len() * std::mem::size_of::<Kmer>()) as u64)
            .sum();
        let resident = batch_bytes + 2 * exchange_bytes + owner_state;
        self.batch_bytes = self.batch_bytes.max(batch_bytes);
        self.resident_bytes = self.resident_bytes.max(resident);
        if resident > budget.max_resident_bytes as u64 {
            return Err(format!(
                "streaming ingest over budget: estimated {resident} resident bytes \
                 (batch {batch_bytes} + exchange 2x{exchange_bytes} + owner state \
                 {owner_state}) exceeds max_resident_bytes = {}; lower \
                 max_batch_reads/max_batch_bytes or raise the budget",
                budget.max_resident_bytes
            ));
        }
        Ok(())
    }
}

fn build_table(counts: HashMap<Kmer, u32>, selection: &KmerSelection) -> KmerTable {
    let mut reliable: Vec<(Kmer, u32)> = counts
        .into_iter()
        .filter(|(_, c)| *c >= selection.min_count && *c <= selection.max_count)
        .collect();
    reliable.sort_by_key(|(k, _)| *k);
    let (kmers, counts): (Vec<_>, Vec<_>) = reliable.into_iter().unzip();
    KmerTable::from_sorted(kmers, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fasta::{parse_fasta, ReadRecord};
    use crate::simulate::DatasetSpec;
    use proptest::prelude::*;

    fn reads_from(seqs: &[&str]) -> ReadSet {
        let mut rs = ReadSet::new();
        for (i, s) in seqs.iter().enumerate() {
            rs.push(ReadRecord { name: format!("r{i}"), seq: s.parse().unwrap() });
        }
        rs
    }

    #[test]
    fn serial_counts_simple_case() {
        // "ACGTA" with k=3 has k-mers ACG, CGT, GTA.  Canonically CGT collapses
        // onto ACG (its reverse complement), so per read: ACG x2, GTA x1.
        // With two identical reads: ACG -> 4, GTA -> 2.
        let reads = reads_from(&["ACGTA", "ACGTA"]);
        let sel = KmerSelection { k: 3, min_count: 2, max_count: 100 };
        let table = count_kmers_serial(&reads, &sel);
        assert_eq!(table.len(), 2);
        let acg = Kmer::from_ascii(b"ACG").unwrap().canonical().kmer;
        let gta = Kmer::from_ascii(b"GTA").unwrap().canonical().kmer;
        assert_eq!(table.count_at(table.column_of(&acg).unwrap()), 4);
        assert_eq!(table.count_at(table.column_of(&gta).unwrap()), 2);
    }

    #[test]
    fn singletons_are_discarded() {
        let reads = reads_from(&["AAAAAAAA", "CCCCCCCC"]);
        let sel = KmerSelection { k: 4, min_count: 2, max_count: 100 };
        let table = count_kmers_serial(&reads, &sel);
        // AAAA appears 5 times in read 0; CCCC appears 5 times in read 1
        // (canonical of GGGG too).  Both are >= 2 so both survive.
        assert_eq!(table.len(), 2);

        let reads2 = reads_from(&["ACGTACGA"]);
        let sel2 = KmerSelection { k: 8, min_count: 2, max_count: 100 };
        let table2 = count_kmers_serial(&reads2, &sel2);
        assert!(table2.is_empty(), "a k-mer occurring once must be discarded");
    }

    #[test]
    fn high_frequency_kmers_are_discarded() {
        let reads = reads_from(&["AAAAAAAAAAAAAAAA"]);
        let sel = KmerSelection { k: 4, min_count: 2, max_count: 5 };
        let table = count_kmers_serial(&reads, &sel);
        assert!(table.is_empty(), "a 13-copy k-mer must exceed max_count=5");
    }

    #[test]
    fn canonical_forms_merge_forward_and_reverse_occurrences() {
        // Read 2 is the reverse complement of read 1: every canonical k-mer
        // should be counted twice.
        let fwd = "ACGGTTACGGAC";
        let rc: String = crate::dna::DnaSeq::from_ascii(fwd.as_bytes())
            .unwrap()
            .reverse_complement()
            .to_ascii();
        let reads = reads_from(&[fwd, &rc]);
        let sel = KmerSelection { k: 5, min_count: 2, max_count: 100 };
        let table = count_kmers_serial(&reads, &sel);
        assert!(!table.is_empty());
        for (_, _, c) in table.iter() {
            assert!(c >= 2, "forward and reverse occurrences must merge");
        }
    }

    #[test]
    fn column_lookup_is_consistent() {
        let reads = reads_from(&["ACGTACGTACG", "ACGTACGTACG"]);
        let sel = KmerSelection { k: 4, min_count: 2, max_count: 100 };
        let table = count_kmers_serial(&reads, &sel);
        for (col, kmer, _) in table.iter() {
            assert_eq!(table.column_of(&kmer), Some(col));
            assert_eq!(table.kmer_at(col), kmer);
        }
        let absent = Kmer::from_ascii(b"TTTT").unwrap().canonical().kmer;
        if table.column_of(&absent).is_some() {
            // Only possible if TTTT/AAAA actually occurs in the reads; it does not.
            panic!("absent k-mer must not have a column");
        }
    }

    #[test]
    fn distributed_matches_serial_on_simulated_data() {
        let ds = DatasetSpec::Tiny.generate(7);
        let sel = KmerSelection { k: 11, min_count: 2, max_count: 30 };
        let serial = count_kmers_serial(&ds.reads, &sel);
        for nprocs in [1usize, 2, 4, 9] {
            let stats = CommStats::new();
            let dist = count_kmers_distributed(&ds.reads, &sel, nprocs, &stats);
            assert_eq!(dist.len(), serial.len(), "table size mismatch at P={nprocs}");
            for (col, kmer, count) in serial.iter() {
                let dcol = dist.column_of(&kmer).expect("k-mer missing in distributed table");
                assert_eq!(dist.count_at(dcol), count, "count mismatch for column {col}");
            }
        }
    }

    #[test]
    fn distributed_communication_is_recorded_and_scales_with_ranks() {
        let ds = DatasetSpec::Tiny.generate(8);
        let sel = KmerSelection { k: 11, min_count: 2, max_count: 30 };
        let stats1 = CommStats::new();
        let _ = count_kmers_distributed(&ds.reads, &sel, 1, &stats1);
        assert_eq!(stats1.words(CommPhase::KmerCounting), 0, "single rank exchanges nothing");
        let stats4 = CommStats::new();
        let _ = count_kmers_distributed(&ds.reads, &sel, 4, &stats4);
        assert!(stats4.words(CommPhase::KmerCounting) > 0);
        assert!(stats4.messages(CommPhase::KmerCounting) > 0);
    }

    #[test]
    fn bella_bound_tracks_depth_and_error() {
        let low_depth = KmerSelection::with_bella_bound(17, 10.0, 0.15);
        let high_depth = KmerSelection::with_bella_bound(17, 40.0, 0.13);
        assert!(high_depth.max_count > low_depth.max_count);
        assert!(low_depth.max_count >= 4);
        assert_eq!(KmerSelection::paper_default().max_count, 4);
        assert_eq!(KmerSelection::paper_default().k, 17);
    }

    #[test]
    fn reads_shorter_than_k_are_skipped() {
        let reads = parse_fasta(">a\nACG\n>b\nACGTACGTAC\n>c\nACGTACGTAC\n").unwrap();
        let sel = KmerSelection { k: 5, min_count: 2, max_count: 100 };
        let table = count_kmers_serial(&reads, &sel);
        assert!(!table.is_empty());
        // No panic and the 3-base read contributed nothing.
    }

    /// Assert two tables are bit-identical: same columns, same k-mers, same
    /// counts, same order.
    fn assert_tables_identical(a: &KmerTable, b: &KmerTable, ctx: &str) {
        assert_eq!(a.len(), b.len(), "table size mismatch ({ctx})");
        for ((ca, ka, na), (cb, kb, nb)) in a.iter().zip(b.iter()) {
            assert_eq!(ca, cb, "column order mismatch ({ctx})");
            assert_eq!(ka, kb, "k-mer mismatch at column {ca} ({ctx})");
            assert_eq!(na, nb, "count mismatch at column {ca} ({ctx})");
        }
    }

    #[test]
    fn streaming_matches_monolithic_at_fixed_batch_sizes_and_threads() {
        use crate::stream::{read_set_batches, IngestBudget};
        let ds = DatasetSpec::Tiny.generate(11);
        let sel = KmerSelection { k: 11, min_count: 2, max_count: 30 };
        for nprocs in [1usize, 3] {
            let mono_stats = CommStats::new();
            let mono = count_kmers_distributed(&ds.reads, &sel, nprocs, &mono_stats);
            for max_batch_reads in [1usize, 7, 64, usize::MAX] {
                for threads in [1usize, 2, 4] {
                    let budget = IngestBudget::with_batch_reads(max_batch_reads);
                    let stats = CommStats::new();
                    let streamed = dibella_dist::with_threads(threads, || {
                        count_kmers_streaming(
                            || Ok(read_set_batches(&ds.reads, budget)),
                            &sel,
                            nprocs,
                            &budget,
                            &stats,
                        )
                    })
                    .unwrap();
                    let ctx = format!("P={nprocs} b={max_batch_reads} t={threads}");
                    assert_tables_identical(&streamed, &mono, &ctx);
                    assert_eq!(
                        stats.extra("ingest_supersteps") as usize,
                        ds.reads.len().div_ceil(max_batch_reads.min(ds.reads.len())),
                        "superstep count ({ctx})"
                    );
                    assert!(stats.extra("ingest_batch_bytes_peak") > 0);
                    assert!(
                        stats.extra("ingest_resident_bytes_peak")
                            >= stats.extra("ingest_batch_bytes_peak")
                    );
                }
            }
        }
    }

    #[test]
    fn streaming_batch_bytes_peak_is_exactly_the_largest_batch() {
        // The exchange consumes its send buffers, so the recorded peak must
        // equal the largest batch exactly — any residual cloning/doubling of
        // batch state would inflate it.
        use crate::stream::{read_set_batches, IngestBudget};
        let ds = DatasetSpec::Tiny.generate(12);
        let budget = IngestBudget::with_batch_reads(5);
        let expected_peak = read_set_batches(&ds.reads, budget)
            .map(|b| b.unwrap().bytes() as u64)
            .max()
            .unwrap();
        let sel = KmerSelection { k: 9, min_count: 2, max_count: 40 };
        let stats = CommStats::new();
        count_kmers_streaming(
            || Ok(read_set_batches(&ds.reads, budget)),
            &sel,
            4,
            &budget,
            &stats,
        )
        .unwrap();
        assert_eq!(stats.extra("ingest_batch_bytes_peak"), expected_peak);
    }

    #[test]
    fn streaming_enforces_the_resident_budget() {
        use crate::stream::{read_set_batches, IngestBudget};
        let ds = DatasetSpec::Tiny.generate(13);
        let sel = KmerSelection { k: 11, min_count: 2, max_count: 30 };
        // A 1-byte resident budget must fail loudly, not grow silently.
        let mut budget = IngestBudget::with_batch_reads(4);
        budget.max_resident_bytes = 1;
        let stats = CommStats::new();
        let err = count_kmers_streaming(
            || Ok(read_set_batches(&ds.reads, budget)),
            &sel,
            2,
            &budget,
            &stats,
        )
        .unwrap_err();
        assert!(err.contains("over budget"), "unexpected error: {err}");
        assert!(err.contains("max_resident_bytes = 1"), "unexpected error: {err}");
    }

    #[test]
    fn streaming_rejects_input_that_changes_between_passes() {
        use crate::stream::{read_set_batches, IngestBudget};
        let ds_a = DatasetSpec::Tiny.generate(14);
        let ds_b = DatasetSpec::Tiny.generate(15);
        let sel = KmerSelection { k: 11, min_count: 2, max_count: 30 };
        let budget = IngestBudget::with_batch_reads(8);
        let stats = CommStats::new();
        let mut pass = 0;
        let err = count_kmers_streaming(
            || {
                pass += 1;
                Ok(read_set_batches(if pass == 1 { &ds_a.reads } else { &ds_b.reads }, budget))
            },
            &sel,
            2,
            &budget,
            &stats,
        )
        .unwrap_err();
        assert!(err.contains("changed between passes"), "unexpected error: {err}");
    }

    #[test]
    fn streaming_propagates_batch_errors() {
        use crate::stream::IngestBudget;
        let sel = KmerSelection { k: 5, min_count: 2, max_count: 30 };
        let budget = IngestBudget::unbounded();
        let stats = CommStats::new();
        let err = count_kmers_streaming(
            || Ok(std::iter::once(Err("bad record".to_string()))),
            &sel,
            2,
            &budget,
            &stats,
        )
        .unwrap_err();
        assert_eq!(err, "bad record");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_streaming_equals_monolithic_at_random_batch_sizes(
            seed in 0u64..200,
            max_batch_reads in 1usize..=64,
            nprocs in 1usize..6,
            threads_idx in 0usize..3,
        ) {
            use crate::stream::{read_set_batches, IngestBudget};
            let threads = [1usize, 2, 4][threads_idx];
            let ds = DatasetSpec::Tiny.generate_with_length(2_000, seed);
            let sel = KmerSelection { k: 9, min_count: 2, max_count: 50 };
            let mono_stats = CommStats::new();
            let mono = count_kmers_distributed(&ds.reads, &sel, nprocs, &mono_stats);
            let budget = IngestBudget::with_batch_reads(max_batch_reads);
            let stats = CommStats::new();
            let streamed = dibella_dist::with_threads(threads, || {
                count_kmers_streaming(
                    || Ok(read_set_batches(&ds.reads, budget)),
                    &sel,
                    nprocs,
                    &budget,
                    &stats,
                )
            });
            let streamed = streamed.unwrap();
            prop_assert_eq!(streamed.len(), mono.len());
            for ((ca, ka, na), (cb, kb, nb)) in streamed.iter().zip(mono.iter()) {
                prop_assert_eq!(ca, cb);
                prop_assert_eq!(ka, kb);
                prop_assert_eq!(na, nb);
            }
            prop_assert_eq!(
                stats.extra("ingest_supersteps") as usize,
                ds.reads.len().div_ceil(max_batch_reads)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn prop_distributed_equals_serial(
            seed in 0u64..200,
            nprocs in 1usize..6,
            k in 4usize..10,
        ) {
            let ds = DatasetSpec::Tiny.generate_with_length(2_000, seed);
            let sel = KmerSelection { k, min_count: 2, max_count: 50 };
            let serial = count_kmers_serial(&ds.reads, &sel);
            let stats = CommStats::new();
            let dist = count_kmers_distributed(&ds.reads, &sel, nprocs, &stats);
            prop_assert_eq!(serial.len(), dist.len());
            for (_, kmer, count) in serial.iter() {
                let col = dist.column_of(&kmer);
                prop_assert!(col.is_some());
                prop_assert_eq!(dist.count_at(col.unwrap()), count);
            }
        }
    }
}

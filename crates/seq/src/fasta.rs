//! FASTA input/output and the read-set container.
//!
//! The pipeline's input is a FASTA file of long reads (Section IV-B).  The
//! real system reads an equal-sized chunk per MPI rank with parallel I/O; in
//! this reproduction a [`ReadSet`] is parsed once and then block-partitioned
//! over the virtual ranks, with the parse itself parallelised over records.

use crate::dna::DnaSeq;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// One FASTA record: a name and its sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadRecord {
    /// The record name (text after `>` up to the first whitespace).
    pub name: String,
    /// The sequence.
    pub seq: DnaSeq,
}

/// An ordered collection of reads; read indices are the row/column indices of
/// every reads-by-reads matrix in the pipeline.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadSet {
    records: Vec<ReadRecord>,
}

impl ReadSet {
    /// An empty read set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from records.
    pub fn from_records(records: Vec<ReadRecord>) -> Self {
        Self { records }
    }

    /// Number of reads.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether there are no reads.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record at index `i`.
    pub fn record(&self, i: usize) -> &ReadRecord {
        &self.records[i]
    }

    /// The sequence of read `i`.
    pub fn seq(&self, i: usize) -> &DnaSeq {
        &self.records[i].seq
    }

    /// The name of read `i`.
    pub fn name(&self, i: usize) -> &str {
        &self.records[i].name
    }

    /// All records.
    pub fn records(&self) -> &[ReadRecord] {
        &self.records
    }

    /// Append a record, returning its index.
    pub fn push(&mut self, record: ReadRecord) -> usize {
        self.records.push(record);
        self.records.len() - 1
    }

    /// Iterate over `(index, &record)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &ReadRecord)> {
        self.records.iter().enumerate()
    }

    /// Total number of bases across all reads (`n·l` in the paper's notation).
    pub fn total_bases(&self) -> usize {
        self.records.iter().map(|r| r.seq.len()).sum()
    }

    /// Mean read length (`l`), zero if empty.
    pub fn mean_read_length(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.total_bases() as f64 / self.records.len() as f64
        }
    }
}

/// Parse FASTA text into a [`ReadSet`].
///
/// Records may span multiple lines; blank lines are ignored.  Characters other
/// than `{A, C, G, T}` (e.g. `N`) are rejected — the simulators in this repo
/// never emit them, and the paper's pipeline operates on the 2-bit alphabet.
pub fn parse_fasta(text: &str) -> Result<ReadSet, String> {
    // Split into raw records first so the per-record parsing can run in parallel.
    let mut raw: Vec<(String, String)> = Vec::new();
    let mut current_name: Option<String> = None;
    let mut current_seq = String::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('>') {
            if let Some(name) = current_name.take() {
                raw.push((name, std::mem::take(&mut current_seq)));
            }
            let name = rest.split_whitespace().next().unwrap_or("").to_string();
            if name.is_empty() {
                return Err("record with empty name".to_string());
            }
            current_name = Some(name);
        } else {
            if current_name.is_none() {
                return Err("sequence data before the first '>' header".to_string());
            }
            current_seq.push_str(line);
        }
    }
    if let Some(name) = current_name.take() {
        raw.push((name, current_seq));
    }

    let records: Result<Vec<ReadRecord>, String> = raw
        .into_par_iter()
        .map(|(name, seq)| {
            let seq = DnaSeq::from_ascii(seq.as_bytes())
                .map_err(|e| format!("record {name}: {e}"))?;
            Ok(ReadRecord { name, seq })
        })
        .collect();
    Ok(ReadSet::from_records(records?))
}

/// Parse a FASTA file from disk.
pub fn parse_fasta_file(path: impl AsRef<Path>) -> Result<ReadSet, String> {
    let text = std::fs::read_to_string(path.as_ref())
        .map_err(|e| format!("reading {}: {e}", path.as_ref().display()))?;
    parse_fasta(&text)
}

/// Serialise a [`ReadSet`] to FASTA text with 80-column line wrapping.
pub fn write_fasta(reads: &ReadSet) -> String {
    let mut out = String::new();
    for (_, rec) in reads.iter() {
        out.push('>');
        out.push_str(&rec.name);
        out.push('\n');
        let ascii = rec.seq.to_ascii();
        for chunk in ascii.as_bytes().chunks(80) {
            out.push_str(std::str::from_utf8(chunk).unwrap());
            out.push('\n');
        }
        if rec.seq.is_empty() {
            out.push('\n');
        }
    }
    out
}

/// Write a [`ReadSet`] to a FASTA file.
pub fn write_fasta_file(reads: &ReadSet, path: impl AsRef<Path>) -> Result<(), String> {
    std::fs::write(path.as_ref(), write_fasta(reads))
        .map_err(|e| format!("writing {}: {e}", path.as_ref().display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = ">read1 some description\nACGT\nACGT\n\n>read2\nTTTT\n>read3\nG\n";

    #[test]
    fn parse_multi_line_records() {
        let reads = parse_fasta(SAMPLE).unwrap();
        assert_eq!(reads.len(), 3);
        assert_eq!(reads.name(0), "read1");
        assert_eq!(reads.seq(0).to_ascii(), "ACGTACGT");
        assert_eq!(reads.seq(1).to_ascii(), "TTTT");
        assert_eq!(reads.seq(2).to_ascii(), "G");
    }

    #[test]
    fn header_description_is_dropped() {
        let reads = parse_fasta(">abc def ghi\nACGT\n").unwrap();
        assert_eq!(reads.name(0), "abc");
    }

    #[test]
    fn invalid_bases_are_reported_with_record_name() {
        let err = parse_fasta(">bad\nACGN\n").unwrap_err();
        assert!(err.contains("bad"), "error should name the record: {err}");
    }

    #[test]
    fn data_before_header_is_an_error() {
        assert!(parse_fasta("ACGT\n>x\nACGT\n").is_err());
    }

    #[test]
    fn empty_input_gives_empty_read_set() {
        let reads = parse_fasta("").unwrap();
        assert!(reads.is_empty());
        assert_eq!(reads.total_bases(), 0);
        assert_eq!(reads.mean_read_length(), 0.0);
    }

    #[test]
    fn write_then_parse_roundtrip() {
        let reads = parse_fasta(SAMPLE).unwrap();
        let text = write_fasta(&reads);
        let back = parse_fasta(&text).unwrap();
        assert_eq!(back, reads);
    }

    #[test]
    fn long_sequences_are_wrapped() {
        let long_seq = "A".repeat(205);
        let reads = parse_fasta(&format!(">long\n{long_seq}\n")).unwrap();
        let text = write_fasta(&reads);
        let max_line = text.lines().map(|l| l.len()).max().unwrap();
        assert!(max_line <= 80);
        let back = parse_fasta(&text).unwrap();
        assert_eq!(back.seq(0).len(), 205);
    }

    #[test]
    fn totals_and_means() {
        let reads = parse_fasta(SAMPLE).unwrap();
        assert_eq!(reads.total_bases(), 8 + 4 + 1);
        assert!((reads.mean_read_length() - 13.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn file_roundtrip() {
        let reads = parse_fasta(SAMPLE).unwrap();
        let dir = std::env::temp_dir().join("dibella_seq_fasta_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.fa");
        write_fasta_file(&reads, &path).unwrap();
        let back = parse_fasta_file(&path).unwrap();
        assert_eq!(back, reads);
        std::fs::remove_file(&path).ok();
    }
}

//! FASTA/FASTQ input/output and the read-set container.
//!
//! The pipeline's input is a FASTA file of long reads (Section IV-B).  The
//! real system reads an equal-sized chunk per MPI rank with parallel I/O; in
//! this reproduction a [`ReadSet`] is parsed once and then block-partitioned
//! over the virtual ranks, with the parse itself parallelised over records.
//!
//! Sequencers actually deliver **FASTQ** (sequence plus per-base Phred
//! qualities); [`parse_fastq`] accepts the classic four-line record format
//! and [`parse_fastq_filtered`] additionally drops reads below a mean-quality
//! threshold — the quality-aware filtering `PipelineConfig::min_mean_quality`
//! wires into the pipeline entry points.

use crate::dna::DnaSeq;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// One FASTA record: a name and its sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadRecord {
    /// The record name (text after `>` up to the first whitespace).
    pub name: String,
    /// The sequence.
    pub seq: DnaSeq,
}

/// An ordered collection of reads; read indices are the row/column indices of
/// every reads-by-reads matrix in the pipeline.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadSet {
    records: Vec<ReadRecord>,
}

impl ReadSet {
    /// An empty read set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from records.
    pub fn from_records(records: Vec<ReadRecord>) -> Self {
        Self { records }
    }

    /// Number of reads.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether there are no reads.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record at index `i`.
    pub fn record(&self, i: usize) -> &ReadRecord {
        &self.records[i]
    }

    /// The sequence of read `i`.
    pub fn seq(&self, i: usize) -> &DnaSeq {
        &self.records[i].seq
    }

    /// The name of read `i`.
    pub fn name(&self, i: usize) -> &str {
        &self.records[i].name
    }

    /// All records.
    pub fn records(&self) -> &[ReadRecord] {
        &self.records
    }

    /// Append a record, returning its index.
    pub fn push(&mut self, record: ReadRecord) -> usize {
        self.records.push(record);
        self.records.len() - 1
    }

    /// Iterate over `(index, &record)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &ReadRecord)> {
        self.records.iter().enumerate()
    }

    /// The length of every read, in index order — the layout-length input of
    /// `extract_contigs` and the scenario runner.
    pub fn lengths(&self) -> Vec<usize> {
        self.records.iter().map(|r| r.seq.len()).collect()
    }

    /// Total number of bases across all reads (`n·l` in the paper's notation).
    pub fn total_bases(&self) -> usize {
        self.records.iter().map(|r| r.seq.len()).sum()
    }

    /// Mean read length (`l`), zero if empty.
    pub fn mean_read_length(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.total_bases() as f64 / self.records.len() as f64
        }
    }
}

/// Split text into logical lines, accepting Unix (`\n`), Windows (`\r\n`)
/// and classic-Mac (`\r`) line endings, in any mixture, with or without a
/// terminator on the final line.
///
/// Sequencing data regularly crosses Windows tooling on its way to a
/// pipeline, so the parsers must not reject a byte-identical record set just
/// because of its line endings (`str::lines` covers `\n` and `\r\n` but
/// leaves lone-`\r` files as one giant line).
fn logical_lines(text: &str) -> impl Iterator<Item = &str> {
    let mut rest = text;
    std::iter::from_fn(move || {
        if rest.is_empty() {
            return None;
        }
        match rest.find(['\n', '\r']) {
            None => Some(std::mem::take(&mut rest)),
            Some(pos) => {
                let line = &rest[..pos];
                let sep = if rest[pos..].starts_with("\r\n") { 2 } else { 1 };
                rest = &rest[pos + sep..];
                Some(line)
            }
        }
    })
}

/// Parse FASTA text into a [`ReadSet`].
///
/// Records may span multiple lines; blank lines are ignored.  Characters other
/// than `{A, C, G, T}` (e.g. `N`) are rejected — the simulators in this repo
/// never emit them, and the paper's pipeline operates on the 2-bit alphabet.
pub fn parse_fasta(text: &str) -> Result<ReadSet, String> {
    // Split into raw records first so the per-record parsing can run in parallel.
    let mut raw: Vec<(String, String)> = Vec::new();
    let mut current_name: Option<String> = None;
    let mut current_seq = String::new();
    for line in logical_lines(text) {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('>') {
            if let Some(name) = current_name.take() {
                raw.push((name, std::mem::take(&mut current_seq)));
            }
            let name = rest.split_whitespace().next().unwrap_or("").to_string();
            if name.is_empty() {
                return Err("record with empty name".to_string());
            }
            current_name = Some(name);
        } else {
            if current_name.is_none() {
                return Err("sequence data before the first '>' header".to_string());
            }
            current_seq.push_str(line);
        }
    }
    if let Some(name) = current_name.take() {
        raw.push((name, current_seq));
    }

    let records: Result<Vec<ReadRecord>, String> = raw
        .into_par_iter()
        .map(|(name, seq)| {
            let seq = DnaSeq::from_ascii(seq.as_bytes())
                .map_err(|e| format!("record {name}: {e}"))?;
            Ok(ReadRecord { name, seq })
        })
        .collect();
    Ok(ReadSet::from_records(records?))
}

/// Parse a FASTA file from disk.
pub fn parse_fasta_file(path: impl AsRef<Path>) -> Result<ReadSet, String> {
    let text = std::fs::read_to_string(path.as_ref())
        .map_err(|e| format!("reading {}: {e}", path.as_ref().display()))?;
    parse_fasta(&text)
}

/// Serialise a [`ReadSet`] to FASTA text with 80-column line wrapping.
pub fn write_fasta(reads: &ReadSet) -> String {
    let mut out = String::new();
    for (_, rec) in reads.iter() {
        out.push('>');
        out.push_str(&rec.name);
        out.push('\n');
        let ascii = rec.seq.to_ascii();
        let bytes = ascii.as_bytes();
        // `to_ascii` emits only ACGT, so every 80-byte chunk is a char
        // boundary — slice the source string instead of re-validating UTF-8.
        for start in (0..bytes.len()).step_by(80) {
            out.push_str(&ascii[start..(start + 80).min(ascii.len())]);
            out.push('\n');
        }
        if rec.seq.is_empty() {
            out.push('\n');
        }
    }
    out
}

/// Write a [`ReadSet`] to a FASTA file.
pub fn write_fasta_file(reads: &ReadSet, path: impl AsRef<Path>) -> Result<(), String> {
    std::fs::write(path.as_ref(), write_fasta(reads))
        .map_err(|e| format!("writing {}: {e}", path.as_ref().display()))
}

/// The Phred+33 offset of FASTQ quality characters.
const PHRED_OFFSET: u8 = 33;

/// Statistics of one quality-filtered FASTQ parse.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FastqFilterStats {
    /// Records in the input.
    pub total_reads: usize,
    /// Records kept after the mean-quality filter.
    pub kept_reads: usize,
    /// Records dropped for a mean quality below the threshold.
    pub dropped_low_quality: usize,
}

/// Parse four-line FASTQ text into a [`ReadSet`] plus each read's mean Phred
/// quality (in the same order).
///
/// The classic record format is enforced strictly: a `@name` header, one
/// sequence line, a `+` separator (bare or repeating the name), and one
/// quality line of exactly the sequence's length in printable Phred+33
/// characters.  Multi-line sequences are rejected — every modern long-read
/// FASTQ writer emits four-line records — as are the malformed shapes the
/// unit tests pin down (missing separator, truncated qualities, bases
/// outside `{A, C, G, T}`).  Line endings are forgiven rather than the
/// format: Unix, Windows (CRLF) and classic-Mac (lone CR) endings are all
/// accepted, as is a final quality line with no terminating newline.
pub fn parse_fastq(text: &str) -> Result<(ReadSet, Vec<f64>), String> {
    let parsed = parse_fastq_records(text)?;
    let mut qualities = Vec::with_capacity(parsed.len());
    let mut reads = ReadSet::new();
    for (record, q) in parsed {
        reads.push(record);
        qualities.push(q);
    }
    Ok((reads, qualities))
}

fn parse_fastq_records(text: &str) -> Result<Vec<(ReadRecord, f64)>, String> {
    let mut raw: Vec<(String, String, String)> = Vec::new();
    let mut lines = logical_lines(text).enumerate().filter(|(_, l)| !l.trim_end().is_empty());
    while let Some((lineno, header)) = lines.next() {
        let header = header.trim_end();
        let Some(rest) = header.strip_prefix('@') else {
            return Err(format!("line {}: expected '@' header, found {header:?}", lineno + 1));
        };
        let name = rest.split_whitespace().next().unwrap_or("").to_string();
        if name.is_empty() {
            return Err(format!("line {}: record with empty name", lineno + 1));
        }
        let Some((_, seq)) = lines.next() else {
            return Err(format!("record {name}: missing sequence line"));
        };
        let Some((sep_no, sep)) = lines.next() else {
            return Err(format!("record {name}: missing '+' separator"));
        };
        let sep = sep.trim_end();
        if !sep.starts_with('+') {
            return Err(format!(
                "line {}: record {name}: expected '+' separator, found {sep:?}",
                sep_no + 1
            ));
        }
        let Some((_, qual)) = lines.next() else {
            return Err(format!("record {name}: missing quality line"));
        };
        raw.push((name, seq.trim_end().to_string(), qual.trim_end().to_string()));
    }

    let parsed: Result<Vec<(ReadRecord, f64)>, String> = raw
        .into_par_iter()
        .map(|(name, seq, qual)| validate_fastq_record(name, seq, qual))
        .collect();
    parsed
}

/// Validate the three variable lines of one four-line FASTQ record (name,
/// sequence, quality) into a [`ReadRecord`] plus its mean Phred quality.
///
/// Shared between the monolithic [`parse_fastq`] and the chunked
/// [`crate::stream::FastqBatcher`], so both paths reject malformed records
/// with identical wording.
pub(crate) fn validate_fastq_record(
    name: String,
    seq: String,
    qual: String,
) -> Result<(ReadRecord, f64), String> {
    let seq = DnaSeq::from_ascii(seq.as_bytes()).map_err(|e| format!("record {name}: {e}"))?;
    if qual.len() != seq.len() {
        return Err(format!(
            "record {name}: quality length {} does not match sequence length {}",
            qual.len(),
            seq.len()
        ));
    }
    let mut sum = 0u64;
    for (i, &q) in qual.as_bytes().iter().enumerate() {
        if !(PHRED_OFFSET..=b'~').contains(&q) {
            return Err(format!(
                "record {name}: invalid quality character {:?} at position {i}",
                q as char
            ));
        }
        sum += (q - PHRED_OFFSET) as u64;
    }
    let mean_q = if seq.is_empty() { 0.0 } else { sum as f64 / seq.len() as f64 };
    Ok((ReadRecord { name, seq }, mean_q))
}

/// Parse FASTQ text and drop reads whose mean Phred quality is below
/// `min_mean_quality` (a threshold of 0.0 keeps everything).
pub fn parse_fastq_filtered(
    text: &str,
    min_mean_quality: f64,
) -> Result<(ReadSet, FastqFilterStats), String> {
    let parsed = parse_fastq_records(text)?;
    let total_reads = parsed.len();
    // Filter by value: kept records move straight into the read set, so the
    // common keep-almost-everything case never copies a sequence buffer.
    let kept: Vec<ReadRecord> = parsed
        .into_iter()
        .filter(|(_, q)| *q >= min_mean_quality)
        .map(|(r, _)| r)
        .collect();
    let stats = FastqFilterStats {
        total_reads,
        kept_reads: kept.len(),
        dropped_low_quality: total_reads - kept.len(),
    };
    Ok((ReadSet::from_records(kept), stats))
}

/// Parse a FASTQ file from disk, applying the mean-quality filter.
pub fn parse_fastq_file(
    path: impl AsRef<Path>,
    min_mean_quality: f64,
) -> Result<(ReadSet, FastqFilterStats), String> {
    let text = std::fs::read_to_string(path.as_ref())
        .map_err(|e| format!("reading {}: {e}", path.as_ref().display()))?;
    parse_fastq_filtered(&text, min_mean_quality)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = ">read1 some description\nACGT\nACGT\n\n>read2\nTTTT\n>read3\nG\n";

    #[test]
    fn parse_multi_line_records() {
        let reads = parse_fasta(SAMPLE).unwrap();
        assert_eq!(reads.len(), 3);
        assert_eq!(reads.name(0), "read1");
        assert_eq!(reads.seq(0).to_ascii(), "ACGTACGT");
        assert_eq!(reads.seq(1).to_ascii(), "TTTT");
        assert_eq!(reads.seq(2).to_ascii(), "G");
    }

    #[test]
    fn header_description_is_dropped() {
        let reads = parse_fasta(">abc def ghi\nACGT\n").unwrap();
        assert_eq!(reads.name(0), "abc");
    }

    #[test]
    fn invalid_bases_are_reported_with_record_name() {
        let err = parse_fasta(">bad\nACGN\n").unwrap_err();
        assert!(err.contains("bad"), "error should name the record: {err}");
    }

    #[test]
    fn data_before_header_is_an_error() {
        assert!(parse_fasta("ACGT\n>x\nACGT\n").is_err());
    }

    #[test]
    fn empty_input_gives_empty_read_set() {
        let reads = parse_fasta("").unwrap();
        assert!(reads.is_empty());
        assert_eq!(reads.total_bases(), 0);
        assert_eq!(reads.mean_read_length(), 0.0);
    }

    #[test]
    fn write_then_parse_roundtrip() {
        let reads = parse_fasta(SAMPLE).unwrap();
        let text = write_fasta(&reads);
        let back = parse_fasta(&text).unwrap();
        assert_eq!(back, reads);
    }

    #[test]
    fn long_sequences_are_wrapped() {
        let long_seq = "A".repeat(205);
        let reads = parse_fasta(&format!(">long\n{long_seq}\n")).unwrap();
        let text = write_fasta(&reads);
        let max_line = text.lines().map(|l| l.len()).max().unwrap();
        assert!(max_line <= 80);
        let back = parse_fasta(&text).unwrap();
        assert_eq!(back.seq(0).len(), 205);
    }

    #[test]
    fn totals_and_means() {
        let reads = parse_fasta(SAMPLE).unwrap();
        assert_eq!(reads.total_bases(), 8 + 4 + 1);
        assert!((reads.mean_read_length() - 13.0 / 3.0).abs() < 1e-9);
        assert_eq!(reads.lengths(), vec![8, 4, 1]);
        assert_eq!(ReadSet::new().lengths(), Vec::<usize>::new());
    }

    const FASTQ: &str = "@read1 instrument=x\nACGT\n+\nII5I\n@read2\nTTTTT\n+read2\n!!!!!\n";

    #[test]
    fn parse_fastq_records_and_mean_qualities() {
        let (reads, quals) = parse_fastq(FASTQ).unwrap();
        assert_eq!(reads.len(), 2);
        assert_eq!(reads.name(0), "read1");
        assert_eq!(reads.seq(0).to_ascii(), "ACGT");
        assert_eq!(reads.seq(1).to_ascii(), "TTTTT");
        // 'I' = Q40, '5' = Q20: mean (40*3 + 20) / 4 = 35; '!' = Q0.
        assert!((quals[0] - 35.0).abs() < 1e-9);
        assert_eq!(quals[1], 0.0);
    }

    #[test]
    fn fastq_mean_quality_filter_drops_low_quality_reads() {
        let (reads, stats) = parse_fastq_filtered(FASTQ, 10.0).unwrap();
        assert_eq!(reads.len(), 1);
        assert_eq!(reads.name(0), "read1");
        assert_eq!(
            stats,
            FastqFilterStats { total_reads: 2, kept_reads: 1, dropped_low_quality: 1 }
        );
        // Threshold 0 keeps everything.
        let (all, stats0) = parse_fastq_filtered(FASTQ, 0.0).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(stats0.dropped_low_quality, 0);
    }

    #[test]
    fn fastq_missing_separator_is_rejected() {
        let err = parse_fastq("@x\nACGT\nIIII\n").unwrap_err();
        assert!(err.contains("separator"), "{err}");
    }

    #[test]
    fn fastq_quality_length_mismatch_is_rejected() {
        let err = parse_fastq("@x\nACGT\n+\nII\n").unwrap_err();
        assert!(err.contains("quality length"), "{err}");
    }

    #[test]
    fn fastq_truncated_records_are_rejected() {
        assert!(parse_fastq("@x\nACGT\n+\n").unwrap_err().contains("missing quality"));
        assert!(parse_fastq("@x\nACGT\n").unwrap_err().contains("missing '+'"));
        assert!(parse_fastq("@x\n").unwrap_err().contains("missing sequence"));
    }

    #[test]
    fn fastq_bad_header_name_and_bases_are_rejected() {
        assert!(parse_fastq("ACGT\n+\nIIII\n").unwrap_err().contains("expected '@'"));
        assert!(parse_fastq("@\nACGT\n+\nIIII\n").unwrap_err().contains("empty name"));
        let err = parse_fastq("@x\nACGN\n+\nIIII\n").unwrap_err();
        assert!(err.contains('x'), "error should name the record: {err}");
    }

    #[test]
    fn fastq_non_printable_quality_characters_are_rejected() {
        let err = parse_fastq("@x\nACGT\n+\nII\u{7f}I\n").unwrap_err();
        assert!(err.contains("invalid quality"), "{err}");
    }

    #[test]
    fn fastq_accepts_crlf_line_endings() {
        // Windows-formatted file: every line terminated with \r\n.
        let crlf = FASTQ.replace('\n', "\r\n");
        let (reads, quals) = parse_fastq(&crlf).unwrap();
        let (unix_reads, unix_quals) = parse_fastq(FASTQ).unwrap();
        assert_eq!(reads, unix_reads);
        assert_eq!(quals, unix_quals);
    }

    #[test]
    fn fastq_accepts_lone_cr_line_endings() {
        // Classic-Mac endings (and mixed endings) parse identically too.
        let cr = FASTQ.replace('\n', "\r");
        let (reads, _) = parse_fastq(&cr).unwrap();
        assert_eq!(reads, parse_fastq(FASTQ).unwrap().0);
        let mixed = "@a\nACGT\r\n+\rIIII\n";
        let (reads, _) = parse_fastq(mixed).unwrap();
        assert_eq!(reads.seq(0).to_ascii(), "ACGT");
    }

    #[test]
    fn fastq_accepts_a_missing_final_newline() {
        // The last quality line is unterminated; the record still parses.
        let (reads, quals) = parse_fastq("@x\nACGT\n+\nIIII").unwrap();
        assert_eq!(reads.len(), 1);
        assert_eq!(reads.seq(0).to_ascii(), "ACGT");
        assert!((quals[0] - 40.0).abs() < 1e-9);
        // Same for CRLF files truncated before the final \r\n.
        let (reads, _) = parse_fastq("@x\r\nACGT\r\n+\r\nIIII").unwrap();
        assert_eq!(reads.len(), 1);
    }

    #[test]
    fn fastq_crlf_malformed_records_are_still_rejected() {
        // Line-ending tolerance must not weaken the format checks: the \r is
        // not part of the quality string, so the length mismatch is caught.
        let err = parse_fastq("@x\r\nACGT\r\n+\r\nII\r\n").unwrap_err();
        assert!(err.contains("quality length"), "{err}");
        let err = parse_fastq("@x\r\nACGT\r\nIIII\r\n").unwrap_err();
        assert!(err.contains("separator"), "{err}");
        // A truncated CRLF record is missing its quality line, not blessed
        // with an empty one.
        let err = parse_fastq("@x\r\nACGT\r\n+\r\n").unwrap_err();
        assert!(err.contains("missing quality"), "{err}");
    }

    #[test]
    fn fasta_accepts_foreign_line_endings_and_no_final_newline() {
        let crlf = SAMPLE.replace('\n', "\r\n");
        assert_eq!(parse_fasta(&crlf).unwrap(), parse_fasta(SAMPLE).unwrap());
        let cr = SAMPLE.replace('\n', "\r");
        assert_eq!(parse_fasta(&cr).unwrap(), parse_fasta(SAMPLE).unwrap());
        let reads = parse_fasta(">x\nACGT").unwrap();
        assert_eq!(reads.seq(0).to_ascii(), "ACGT");
    }

    #[test]
    fn fastq_empty_input_and_empty_records() {
        let (reads, quals) = parse_fastq("").unwrap();
        assert!(reads.is_empty());
        assert!(quals.is_empty());
    }

    #[test]
    fn fastq_file_roundtrip_through_filter() {
        let dir = std::env::temp_dir().join("dibella_seq_fastq_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.fq");
        std::fs::write(&path, FASTQ).unwrap();
        let (reads, stats) = parse_fastq_file(&path, 10.0).unwrap();
        assert_eq!(reads.len(), 1);
        assert_eq!(stats.total_reads, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_roundtrip() {
        let reads = parse_fasta(SAMPLE).unwrap();
        let dir = std::env::temp_dir().join("dibella_seq_fasta_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.fa");
        write_fasta_file(&reads, &path).unwrap();
        let back = parse_fasta_file(&path).unwrap();
        assert_eq!(back, reads);
        std::fs::remove_file(&path).ok();
    }
}

//! Homopolymer compression (HPC) with an exact compressed→raw coordinate map.
//!
//! Long-read sketching pipelines (mapquik, minimap2's `--hpc` mode) collapse
//! each run of identical bases to a single base before selecting minimizers:
//! PacBio/ONT insertion and deletion errors concentrate in homopolymer runs,
//! so two reads of the same locus agree far more often in HPC space than in
//! raw space.  Downstream consumers (seed placement for x-drop alignment)
//! still work in raw coordinates, so the compression must be *invertible at
//! the coordinate level*: every compressed position maps back to the raw run
//! `[raw_start, raw_end)` it was collapsed from.
//!
//! [`HpcSeq`] stores the compressed sequence together with that exact map.
//! The map costs 4 bytes per compressed base, which is bounded by 4 bytes per
//! raw base — small next to the `ReadSet` itself, and only materialised while
//! a read is being sketched.

use crate::dna::DnaSeq;

/// A homopolymer-compressed sequence plus the exact compressed→raw
/// coordinate map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HpcSeq {
    /// The compressed sequence (one base per homopolymer run).
    compressed: DnaSeq,
    /// `run_starts[i]` is the raw index of the first base of run `i`.
    /// Monotonically increasing; `run_starts.len() == compressed.len()`.
    run_starts: Vec<u32>,
    /// Length of the raw sequence the compression was computed from.
    raw_len: u32,
}

impl HpcSeq {
    /// Compress `raw` by collapsing each maximal run of identical bases to a
    /// single base, recording where each run starts in raw coordinates.
    pub fn compress(raw: &DnaSeq) -> HpcSeq {
        let mut compressed = DnaSeq::new();
        let mut run_starts = Vec::new();
        let mut prev: Option<u8> = None;
        for (i, &code) in raw.codes().iter().enumerate() {
            if prev != Some(code) {
                compressed.push_code(code);
                run_starts.push(i as u32);
                prev = Some(code);
            }
        }
        HpcSeq { compressed, run_starts, raw_len: raw.len() as u32 }
    }

    /// The compressed sequence.
    pub fn compressed(&self) -> &DnaSeq {
        &self.compressed
    }

    /// Length of the compressed sequence (number of homopolymer runs).
    pub fn len(&self) -> usize {
        self.compressed.len()
    }

    /// Whether the source sequence was empty.
    pub fn is_empty(&self) -> bool {
        self.compressed.is_empty()
    }

    /// Length of the raw sequence this was compressed from.
    pub fn raw_len(&self) -> usize {
        self.raw_len as usize
    }

    /// Raw coordinate of the first base of the run at compressed position
    /// `i` — the exact decompression of a compressed coordinate.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    pub fn decompress_coord(&self, i: usize) -> usize {
        self.run_starts[i] as usize
    }

    /// Exclusive raw end of the run at compressed position `i`, so the run
    /// occupies `decompress_coord(i)..raw_end(i)` in the raw sequence.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    pub fn raw_end(&self, i: usize) -> usize {
        if i + 1 < self.run_starts.len() {
            self.run_starts[i + 1] as usize
        } else {
            self.raw_len as usize
        }
    }

    /// The compressed position whose run contains raw coordinate `raw_pos`.
    ///
    /// # Panics
    /// Panics if `raw_pos >= self.raw_len()`.
    pub fn compress_coord(&self, raw_pos: usize) -> usize {
        assert!(raw_pos < self.raw_len(), "raw position {raw_pos} out of range");
        // The run owning raw_pos is the last run starting at or before it.
        match self.run_starts.binary_search(&(raw_pos as u32)) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }

    /// Raw bases per compressed base (`raw_len / len`), the HPC compression
    /// ratio.  `1.0` for the empty sequence.
    pub fn compression_ratio(&self) -> f64 {
        if self.compressed.is_empty() {
            1.0
        } else {
            self.raw_len as f64 / self.compressed.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fasta::parse_fasta;
    use proptest::prelude::*;

    #[test]
    fn compresses_runs_to_single_bases() {
        let raw: DnaSeq = "AAACCGTTTT".parse().unwrap();
        let hpc = HpcSeq::compress(&raw);
        assert_eq!(hpc.compressed().to_ascii(), "ACGT");
        assert_eq!(hpc.decompress_coord(0), 0); // AAA starts at 0
        assert_eq!(hpc.decompress_coord(1), 3); // CC starts at 3
        assert_eq!(hpc.decompress_coord(2), 5); // G starts at 5
        assert_eq!(hpc.decompress_coord(3), 6); // TTTT starts at 6
        assert_eq!(hpc.raw_end(3), 10);
        assert_eq!(hpc.raw_len(), 10);
        assert!((hpc.compression_ratio() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_sequence_compresses_to_empty() {
        let hpc = HpcSeq::compress(&DnaSeq::new());
        assert!(hpc.is_empty());
        assert_eq!(hpc.len(), 0);
        assert_eq!(hpc.raw_len(), 0);
        assert!((hpc.compression_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn run_free_sequence_is_unchanged() {
        let raw: DnaSeq = "ACGTACGT".parse().unwrap();
        let hpc = HpcSeq::compress(&raw);
        assert_eq!(hpc.compressed(), &raw);
        for i in 0..8 {
            assert_eq!(hpc.decompress_coord(i), i);
            assert_eq!(hpc.raw_end(i), i + 1);
            assert_eq!(hpc.compress_coord(i), i);
        }
    }

    #[test]
    fn crlf_and_lowercase_fasta_inputs_compress_identically() {
        // The FASTA parser must normalise CRLF line endings and lowercase
        // bases before compression ever sees them.
        let plain = parse_fasta(">r\nAAACCGGGGT\n").unwrap();
        let crlf = parse_fasta(">r\r\nAAACC\r\nGGGGT\r\n").unwrap();
        let lower = parse_fasta(">r\naaaccggggt\n").unwrap();
        let h_plain = HpcSeq::compress(plain.seq(0));
        assert_eq!(h_plain, HpcSeq::compress(crlf.seq(0)));
        assert_eq!(h_plain, HpcSeq::compress(lower.seq(0)));
        assert_eq!(h_plain.compressed().to_ascii(), "ACGT");
    }

    fn arb_seq() -> impl Strategy<Value = DnaSeq> {
        // Small alphabet-run structure: sample (code, run length) pairs so
        // homopolymer runs are common.
        proptest::collection::vec((0u8..4, 1usize..6), 0..60).prop_map(|runs| {
            let mut seq = DnaSeq::new();
            for (code, len) in runs {
                for _ in 0..len {
                    seq.push_code(code);
                }
            }
            seq
        })
    }

    proptest! {
        // `decompress_coord(compress(seq))` maps every compressed position
        // back into its source run: the run is non-empty, uniform, equal to
        // the compressed base, and maximal (neighbouring bases differ).
        #[test]
        fn prop_every_compressed_position_maps_into_its_source_run(raw in arb_seq()) {
            let hpc = HpcSeq::compress(&raw);
            let mut covered = 0usize;
            for i in 0..hpc.len() {
                let start = hpc.decompress_coord(i);
                let end = hpc.raw_end(i);
                prop_assert!(start < end, "run {i} is empty");
                prop_assert_eq!(start, covered, "runs must tile the raw sequence");
                let code = hpc.compressed().code(i);
                for raw_pos in start..end {
                    prop_assert_eq!(raw.code(raw_pos), code);
                    prop_assert_eq!(hpc.compress_coord(raw_pos), i);
                }
                // Maximality: the base before/after the run differs.
                if start > 0 {
                    prop_assert!(raw.code(start - 1) != code);
                }
                if end < raw.len() {
                    prop_assert!(raw.code(end) != code);
                }
                covered = end;
            }
            prop_assert_eq!(covered, raw.len());
        }

        // HPC commutes with reverse complement: compressing the reverse
        // complement yields the reverse complement of the compressed
        // sequence (run structure is strand-symmetric).
        #[test]
        fn prop_hpc_commutes_with_reverse_complement(raw in arb_seq()) {
            let fwd = HpcSeq::compress(&raw);
            let rev = HpcSeq::compress(&raw.reverse_complement());
            prop_assert_eq!(rev.compressed(), &fwd.compressed().reverse_complement());
        }

        // Round-trip through FASTA text with CRLF line endings and lowercase
        // bases reaches the same compression as the direct path.
        #[test]
        fn prop_crlf_lowercase_fasta_roundtrip(raw in arb_seq()) {
            if raw.is_empty() {
                return Ok(()); // the FASTA writer/parser round-trip needs a body
            }
            let ascii = raw.to_ascii().to_lowercase();
            // Wrap at 17 columns with CRLF endings to exercise mid-run splits.
            let mut text = String::from(">read\r\n");
            for chunk in ascii.as_bytes().chunks(17) {
                text.push_str(std::str::from_utf8(chunk).unwrap());
                text.push_str("\r\n");
            }
            let parsed = parse_fasta(&text).unwrap();
            prop_assert_eq!(HpcSeq::compress(parsed.seq(0)), HpcSeq::compress(&raw));
        }
    }
}

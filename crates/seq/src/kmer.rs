//! Fixed-length k-mers packed into 64-bit integers.
//!
//! diBELLA 2D indexes reads by their constituent k-mers (default `k = 17`) and
//! always works with the **canonical** form — the lexicographically smaller of
//! a k-mer and its reverse complement — because sequencing may read either
//! strand (Section II).  A [`CanonicalKmer`] also remembers whether the
//! canonical form equals the original orientation, which the overlap semiring
//! needs to reason about relative read orientations.

use crate::dna::DnaSeq;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum supported k (2 bits per base in a `u64`, one value reserved).
pub const MAX_K: usize = 31;

/// A k-mer packed 2 bits per base into a `u64` (most significant pair first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Kmer {
    packed: u64,
    k: u8,
}

impl Kmer {
    /// Build from a slice of 2-bit codes.
    ///
    /// # Panics
    /// Panics if `codes.len()` is 0 or exceeds [`MAX_K`], or a code is not 2-bit.
    pub fn from_codes(codes: &[u8]) -> Self {
        assert!(!codes.is_empty() && codes.len() <= MAX_K, "k must be in 1..={MAX_K}");
        let mut packed = 0u64;
        for &c in codes {
            assert!(c < 4, "invalid 2-bit code {c}");
            packed = (packed << 2) | c as u64;
        }
        Self { packed, k: codes.len() as u8 }
    }

    /// Parse from ASCII (e.g. `"ACGTT"`).
    pub fn from_ascii(s: &[u8]) -> Result<Self, String> {
        let seq = DnaSeq::from_ascii(s)?;
        if seq.is_empty() || seq.len() > MAX_K {
            return Err(format!("k must be in 1..={MAX_K}, got {}", seq.len()));
        }
        Ok(Self::from_codes(seq.codes()))
    }

    /// k (the k-mer length).
    pub fn k(&self) -> usize {
        self.k as usize
    }

    /// The packed 2-bit representation.
    pub fn packed(&self) -> u64 {
        self.packed
    }

    /// The 2-bit code at position `i` (0 = leftmost base).
    pub fn code_at(&self, i: usize) -> u8 {
        assert!(i < self.k());
        ((self.packed >> (2 * (self.k() - 1 - i))) & 3) as u8
    }

    /// The reverse complement k-mer.
    pub fn reverse_complement(&self) -> Kmer {
        let mut packed = 0u64;
        for i in 0..self.k() {
            let c = (self.packed >> (2 * i)) & 3;
            packed = (packed << 2) | (3 - c);
        }
        Kmer { packed, k: self.k }
    }

    /// The canonical form: the lexicographically smaller of `self` and its
    /// reverse complement, along with a flag saying whether `self` was already
    /// canonical.
    pub fn canonical(&self) -> CanonicalKmer {
        let rc = self.reverse_complement();
        if self.packed <= rc.packed {
            CanonicalKmer { kmer: *self, was_forward: true }
        } else {
            CanonicalKmer { kmer: rc, was_forward: false }
        }
    }

    /// Render as ASCII.
    pub fn to_ascii(&self) -> String {
        (0..self.k()).map(|i| crate::dna::code_to_base(self.code_at(i)) as char).collect()
    }

    /// A well-mixed 64-bit hash of the packed value (splitmix64), used to
    /// assign k-mers to owner ranks uniformly as the paper assumes.
    pub fn hash64(&self) -> u64 {
        let mut z = self.packed.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

impl fmt::Display for Kmer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_ascii())
    }
}

/// A canonical k-mer together with the orientation of the source k-mer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CanonicalKmer {
    /// The canonical (lexicographically smaller) k-mer.
    pub kmer: Kmer,
    /// `true` if the original k-mer was already canonical (forward strand).
    pub was_forward: bool,
}

/// Iterator over all k-mers of a sequence with their start positions.
pub struct KmerIter<'a> {
    seq: &'a DnaSeq,
    k: usize,
    pos: usize,
}

impl<'a> KmerIter<'a> {
    /// Iterate over the k-mers of `seq`.
    ///
    /// # Panics
    /// Panics if `k` is 0 or exceeds [`MAX_K`].
    pub fn new(seq: &'a DnaSeq, k: usize) -> Self {
        assert!((1..=MAX_K).contains(&k), "k must be in 1..={MAX_K}");
        Self { seq, k, pos: 0 }
    }
}

impl Iterator for KmerIter<'_> {
    /// `(start position, k-mer)`
    type Item = (usize, Kmer);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos + self.k > self.seq.len() {
            return None;
        }
        let codes = &self.seq.codes()[self.pos..self.pos + self.k];
        let kmer = Kmer::from_codes(codes);
        let pos = self.pos;
        self.pos += 1;
        Some((pos, kmer))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.seq.len() + 1).saturating_sub(self.pos + self.k);
        (remaining, Some(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn packing_and_ascii_roundtrip() {
        let k = Kmer::from_ascii(b"ACGTT").unwrap();
        assert_eq!(k.k(), 5);
        assert_eq!(k.to_ascii(), "ACGTT");
        assert_eq!(k.code_at(0), 0);
        assert_eq!(k.code_at(4), 3);
    }

    #[test]
    fn reverse_complement_small_case() {
        let k = Kmer::from_ascii(b"AACG").unwrap();
        assert_eq!(k.reverse_complement().to_ascii(), "CGTT");
    }

    #[test]
    fn canonical_picks_lexicographically_smaller() {
        // ATTCG vs CGAAT: ATTCG is smaller.
        let k = Kmer::from_ascii(b"ATTCG").unwrap();
        let canon = k.canonical();
        assert_eq!(canon.kmer.to_ascii(), "ATTCG");
        assert!(canon.was_forward);

        let k2 = Kmer::from_ascii(b"CGAAT").unwrap();
        let canon2 = k2.canonical();
        assert_eq!(canon2.kmer.to_ascii(), "ATTCG");
        assert!(!canon2.was_forward);
    }

    #[test]
    fn palindromic_kmer_is_its_own_canonical() {
        // ACGT is its own reverse complement.
        let k = Kmer::from_ascii(b"ACGT").unwrap();
        assert_eq!(k.reverse_complement(), k);
        assert!(k.canonical().was_forward);
    }

    #[test]
    fn kmer_iter_covers_all_positions() {
        let seq: DnaSeq = "ACGTAC".parse().unwrap();
        let kmers: Vec<_> = KmerIter::new(&seq, 3).collect();
        assert_eq!(kmers.len(), 4);
        assert_eq!(kmers[0].0, 0);
        assert_eq!(kmers[0].1.to_ascii(), "ACG");
        assert_eq!(kmers[3].0, 3);
        assert_eq!(kmers[3].1.to_ascii(), "TAC");
    }

    #[test]
    fn kmer_iter_on_short_sequence_is_empty() {
        let seq: DnaSeq = "AC".parse().unwrap();
        assert_eq!(KmerIter::new(&seq, 5).count(), 0);
    }

    #[test]
    fn kmer_count_matches_l_minus_k_plus_1() {
        // The communication analysis uses (l - k + 1) k-mers per read.
        let seq = DnaSeq::from_codes((0..100).map(|i| (i % 4) as u8).collect());
        for k in [1usize, 5, 17, 31] {
            assert_eq!(KmerIter::new(&seq, k).count(), 100 - k + 1);
        }
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let a = Kmer::from_ascii(b"ACGTACGTACGTACGTA").unwrap();
        let b = Kmer::from_ascii(b"ACGTACGTACGTACGTC").unwrap();
        assert_eq!(a.hash64(), a.hash64());
        assert_ne!(a.hash64(), b.hash64());
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn oversized_k_panics() {
        let codes = vec![0u8; 40];
        let _ = Kmer::from_codes(&codes);
    }

    fn arb_kmer() -> impl Strategy<Value = Kmer> {
        proptest::collection::vec(0u8..4, 1..=MAX_K).prop_map(|codes| Kmer::from_codes(&codes))
    }

    proptest! {
        #[test]
        fn prop_revcomp_involution(k in arb_kmer()) {
            prop_assert_eq!(k.reverse_complement().reverse_complement(), k);
        }

        #[test]
        fn prop_canonical_is_idempotent_and_minimal(k in arb_kmer()) {
            let canon = k.canonical();
            // Canonical of canonical is itself (forward).
            let again = canon.kmer.canonical();
            prop_assert_eq!(again.kmer, canon.kmer);
            prop_assert!(again.was_forward);
            // It is really the minimum of the two packed values.
            prop_assert!(canon.kmer.packed() <= k.packed());
            prop_assert!(canon.kmer.packed() <= k.reverse_complement().packed());
        }

        #[test]
        fn prop_kmer_and_its_rc_share_canonical(k in arb_kmer()) {
            prop_assert_eq!(k.canonical().kmer, k.reverse_complement().canonical().kmer);
        }

        #[test]
        fn prop_ascii_roundtrip(k in arb_kmer()) {
            let back = Kmer::from_ascii(k.to_ascii().as_bytes()).unwrap();
            prop_assert_eq!(back, k);
        }
    }
}

//! # dibella-seq — sequences, k-mers and k-mer counting
//!
//! The genomics substrate of the diBELLA 2D reproduction:
//!
//! * [`dna`] — the DNA alphabet, 2-bit codes, reverse complements and the
//!   [`dna::DnaSeq`] sequence type.
//! * [`kmer`] — fixed-length k-mers packed into a `u64` (k ≤ 31), canonical
//!   forms and k-mer extraction from sequences.
//! * [`fasta`] — FASTA parsing/writing and the [`fasta::ReadSet`] container
//!   used throughout the pipeline.
//! * [`bloom`] — the Bloom filter used to discard singleton k-mers during
//!   counting (Melsted & Pritchard style, as cited by the paper).
//! * [`simulate`] — synthetic genome and PacBio-CLR-like long-read simulation.
//!   The paper evaluates on proprietary-scale PacBio CLR datasets
//!   (C. elegans 40×, H. sapiens 10×); this module generates scaled-down
//!   datasets with the same depth / read-length / error-rate statistics so
//!   that every downstream code path (k-mer spectrum, overlap density,
//!   transitive reduction) is exercised realistically.
//! * [`kmer_counter`] — the two-pass distributed k-mer counter (Section IV-C):
//!   Bloom-filter pass then counting pass, with the all-to-all k-mer exchange
//!   accounted under [`dibella_dist::CommPhase::KmerCounting`].
//! * [`hpc`] — homopolymer compression with an exact compressed→raw
//!   coordinate map, the first stage of the sketch-space candidate path.
//! * [`sketch`] — shared sketching primitives: canonical k-mer hashing plus
//!   windowed (minimap2-style) and density-bound (mapquik-style) minimizer
//!   selection, used by both `dibella-overlap` and `dibella-sketch`.

#![warn(missing_docs)]

pub mod bloom;
pub mod dna;
pub mod fasta;
pub mod hpc;
pub mod kmer;
pub mod kmer_counter;
pub mod simulate;
pub mod sketch;
pub mod stream;

pub use bloom::{BloomFilter, ScalableBloom};
pub use dna::{complement_code, DnaSeq, Strand};
pub use fasta::{
    parse_fasta, parse_fasta_file, parse_fastq, parse_fastq_file, parse_fastq_filtered,
    write_fasta, write_fasta_file, FastqFilterStats, ReadRecord, ReadSet,
};
pub use hpc::HpcSeq;
pub use kmer::{CanonicalKmer, Kmer, KmerIter};
pub use kmer_counter::{
    count_kmers_distributed, count_kmers_serial, count_kmers_streaming, KmerSelection, KmerTable,
};
pub use sketch::{
    density_minimizers, density_threshold, kmer_hashes, windowed_minimizers, MinimizerPos,
};
pub use simulate::{
    build_scenario, DatasetSpec, LengthModel, ReadSimConfig, ScenarioKind, ScenarioParams,
    SimulatedDataset, Topology,
};
pub use stream::{
    fasta_batches, fasta_batches_file, fastq_batches, read_set_batches, FastaBatcher,
    FastqBatcher, IngestBudget, LineAssembler, ReadBatch,
};

//! Shared sequence-sketching primitives: canonical k-mer hashing and
//! minimizer selection.
//!
//! Two consumers sketch reads with minimizers: the minimap2-style comparison
//! overlapper (`dibella-overlap`, windowed `(w, k)` selection) and the
//! k-min-mer candidate subsystem (`dibella-sketch`, density-bound selection).
//! Both start from the same primitive — the canonical 64-bit hash of every
//! k-mer in a sequence — so that primitive and the two selection rules live
//! here, once.
//!
//! * [`kmer_hashes`] — `(hash, position, was_forward)` for every k-mer, with
//!   the hash computed over the *canonical* (strand-invariant) k-mer.
//! * [`windowed_minimizers`] — classic minimap2 `(w, k)` selection: the
//!   smallest hash of every window of `w` consecutive k-mers.  The achieved
//!   density is an emergent `≈ 2/(w+1)`.
//! * [`density_minimizers`] — mapquik-style hash-threshold selection: keep a
//!   k-mer iff its hash is below `density · 2^64`.  Density is a *direct*
//!   parameter, and selection is position-local (a base edit perturbs only
//!   the k-mers covering it, never a neighbouring window), which is what the
//!   k-min-mer path needs for predictable matrix sparsity.

use crate::dna::DnaSeq;
use crate::kmer::KmerIter;

/// One selected (or candidate) minimizer: the canonical k-mer hash, the
/// 0-based start position of the k-mer in the sequence as stored, and whether
/// the canonical orientation reads forward at that position.
pub type MinimizerPos = (u64, u32, bool);

/// The canonical hash of every k-mer of `seq`, in position order.
///
/// Returns one `(hash64, pos, was_forward)` triple per k-mer window; empty if
/// `seq.len() < k`.
pub fn kmer_hashes(seq: &DnaSeq, k: usize) -> Vec<MinimizerPos> {
    KmerIter::new(seq, k)
        .map(|(pos, kmer)| {
            let canon = kmer.canonical();
            (canon.kmer.hash64(), pos as u32, canon.was_forward)
        })
        .collect()
}

/// The `(w, k)` minimizer sketch of a sequence: for every window of `w`
/// consecutive k-mers, the canonical k-mer with the smallest hash is kept
/// (deduplicated across adjacent windows).  Sequences with at most `w`
/// k-mers contribute their single smallest k-mer.
pub fn windowed_minimizers(seq: &DnaSeq, k: usize, w: usize) -> Vec<MinimizerPos> {
    if seq.len() < k {
        return Vec::new();
    }
    let hashes = kmer_hashes(seq, k);
    let mut out: Vec<MinimizerPos> = Vec::new();
    if hashes.len() <= w {
        if let Some(min) = hashes.iter().min_by_key(|(h, _, _)| *h) {
            out.push(*min);
        }
        return out;
    }
    for window in hashes.windows(w) {
        // `windows(w)` with w >= 1 never yields an empty slice.
        let Some(min) = window.iter().min_by_key(|(h, _, _)| *h) else { continue };
        if out.last().is_none_or(|last| last.1 != min.1) {
            out.push(*min);
        }
    }
    out
}

/// The hash threshold below which a canonical k-mer hash is selected at the
/// given density.  `density` is clamped to `[0, 1]`.
pub fn density_threshold(density: f64) -> u64 {
    let d = density.clamp(0.0, 1.0);
    if d >= 1.0 {
        u64::MAX
    } else {
        // 2^64 · d, computed in f64 then truncated.  Exact enough: the
        // relative density error is at most 2^-53.
        (d * (u64::MAX as f64)) as u64
    }
}

/// Density-bound minimizer selection: every k-mer whose canonical hash is
/// `< density_threshold(density)` is kept.
///
/// Unlike [`windowed_minimizers`], the expected fraction of k-mers selected
/// is exactly `density` (hash64 is uniform on `u64`), there is no maximum
/// gap guarantee, and selection at a position depends only on the k-mer at
/// that position — the property that makes k-min-mer sketches comparable
/// across reads regardless of what surrounds a shared region.
pub fn density_minimizers(seq: &DnaSeq, k: usize, density: f64) -> Vec<MinimizerPos> {
    let threshold = density_threshold(density);
    kmer_hashes(seq, k).into_iter().filter(|(h, _, _)| *h < threshold).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::DatasetSpec;
    use std::collections::HashSet;

    #[test]
    fn kmer_hashes_cover_every_window() {
        let ds = DatasetSpec::Tiny.generate(11);
        let seq = ds.reads.seq(0);
        let hashes = kmer_hashes(seq, 13);
        assert_eq!(hashes.len(), seq.len() - 13 + 1);
        for (i, (_, pos, _)) in hashes.iter().enumerate() {
            assert_eq!(*pos as usize, i);
        }
    }

    #[test]
    fn kmer_hashes_are_strand_invariant() {
        let ds = DatasetSpec::Tiny.generate(12);
        let seq = ds.reads.seq(0);
        let rc = seq.reverse_complement();
        let fwd: HashSet<u64> = kmer_hashes(seq, 13).iter().map(|x| x.0).collect();
        let rev: HashSet<u64> = kmer_hashes(&rc, 13).iter().map(|x| x.0).collect();
        assert_eq!(fwd, rev, "canonical hashes must not depend on the stored strand");
    }

    #[test]
    fn short_sequences_yield_no_hashes() {
        let seq: DnaSeq = "ACGT".parse().unwrap();
        assert!(kmer_hashes(&seq, 13).is_empty());
        assert!(windowed_minimizers(&seq, 13, 5).is_empty());
        assert!(density_minimizers(&seq, 13, 0.5).is_empty());
    }

    #[test]
    fn density_controls_the_selected_fraction() {
        let ds = DatasetSpec::Tiny.generate_with_length(8_000, 13);
        let seq = &ds.genome;
        let total = seq.len() - 15 + 1;
        for density in [0.05, 0.1, 0.25] {
            let picked = density_minimizers(seq, 15, density).len();
            let achieved = picked as f64 / total as f64;
            assert!(
                (achieved - density).abs() < density * 0.5 + 0.01,
                "density {density}: achieved {achieved} over {total} k-mers"
            );
        }
    }

    #[test]
    fn density_selection_is_position_local() {
        // Selection of a position must survive unrelated flanking edits.
        let ds = DatasetSpec::Tiny.generate_with_length(2_000, 14);
        let seq = ds.genome.slice(100, 400);
        let extended = ds.genome.slice(50, 450);
        let k = 15;
        let inner: HashSet<u64> =
            density_minimizers(&seq, k, 0.2).iter().map(|x| x.0).collect();
        let outer: HashSet<u64> =
            density_minimizers(&extended, k, 0.2).iter().map(|x| x.0).collect();
        assert!(inner.is_subset(&outer), "embedding a region must preserve its selections");
    }

    #[test]
    fn density_threshold_endpoints() {
        assert_eq!(density_threshold(0.0), 0);
        assert_eq!(density_threshold(1.0), u64::MAX);
        assert_eq!(density_threshold(2.0), u64::MAX);
        assert_eq!(density_threshold(-1.0), 0);
        let half = density_threshold(0.5);
        assert!((half as f64 / u64::MAX as f64 - 0.5).abs() < 1e-9);
    }
}

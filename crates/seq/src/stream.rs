//! Chunked, bounded-memory FASTA/FASTQ ingest.
//!
//! The monolithic parsers in [`crate::fasta`] require the whole input text in
//! memory; at the scales the paper targets no rank can hold its input, so the
//! real system streams fixed-size I/O chunks per rank and processes reads in
//! bounded batches (the BSP *supersteps* of the streaming k-mer counter in
//! [`crate::kmer_counter`]).  This module is the chunk layer:
//!
//! * [`LineAssembler`] — turns arbitrary byte chunks into logical lines,
//!   handling records (and CRLF terminators) that straddle chunk boundaries;
//! * [`FastaBatcher`] / [`FastqBatcher`] — incremental record assembly with
//!   the *same* validation and line-ending tolerance as the monolithic
//!   parsers, sealing [`ReadBatch`]es at the [`IngestBudget`] bounds;
//! * [`fasta_batches`] / [`fastq_batches`] — batch iterators over in-memory
//!   text fed through the chunk path (tests and the pipeline entry point);
//! * [`fasta_batches_file`] — batch iterator over a FASTA file read
//!   `chunk_bytes` at a time, so peak memory is one chunk plus one batch;
//! * [`read_set_batches`] — batch views over an already-resident
//!   [`ReadSet`], for replaying supersteps without re-parsing.
//!
//! Every path yields byte-identical records to the monolithic parsers for
//! any chunk size, which is what makes the streaming pipeline's outputs
//! bit-identical to the monolithic pipeline's.

use crate::dna::DnaSeq;
use crate::fasta::{validate_fastq_record, ReadRecord, ReadSet};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io::Read;
use std::path::Path;

/// The memory budget of a streaming ingest.
///
/// All three bounds default to "unbounded" (`usize::MAX`); setting any of
/// them makes the corresponding resource hard-capped:
///
/// * a [`ReadBatch`] is sealed before it would exceed `max_batch_reads`
///   reads or `max_batch_bytes` heap bytes (a batch never splits a read, so
///   one read larger than `max_batch_bytes` still forms a singleton batch);
/// * the streaming k-mer counter fails with an error if its estimated
///   resident bytes (current batch + in-flight exchange buffers + per-owner
///   filter/table state) ever exceed `max_resident_bytes`, rather than
///   silently growing past the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestBudget {
    /// Maximum reads per batch (one superstep ingests one batch per rank).
    pub max_batch_reads: usize,
    /// Maximum heap bytes per batch (names + 1-byte-per-base sequences).
    pub max_batch_bytes: usize,
    /// Hard cap on the streaming ingest's estimated resident bytes.
    pub max_resident_bytes: usize,
}

impl Default for IngestBudget {
    fn default() -> Self {
        Self::unbounded()
    }
}

impl IngestBudget {
    /// No bounds: one batch holding the whole input, no resident cap — the
    /// monolithic behaviour, through the streaming machinery.
    pub fn unbounded() -> Self {
        Self {
            max_batch_reads: usize::MAX,
            max_batch_bytes: usize::MAX,
            max_resident_bytes: usize::MAX,
        }
    }

    /// Bound batches by read count only.
    pub fn with_batch_reads(max_batch_reads: usize) -> Self {
        Self { max_batch_reads, ..Self::unbounded() }
    }

    /// Bound batches by heap bytes only.
    pub fn with_batch_bytes(max_batch_bytes: usize) -> Self {
        Self { max_batch_bytes, ..Self::unbounded() }
    }
}

/// One bounded batch of parsed reads — the unit of a streaming superstep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadBatch {
    /// Global index of the first read of this batch (reads are numbered in
    /// input order across batches, matching the monolithic [`ReadSet`]).
    pub first_read: usize,
    /// The records of this batch, in input order.
    pub records: Vec<ReadRecord>,
}

impl ReadBatch {
    /// Number of reads in the batch.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the batch holds no reads.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Estimated heap bytes of the batch: name bytes plus one byte per base
    /// (the [`DnaSeq`] in-memory layout) — the quantity
    /// [`IngestBudget::max_batch_bytes`] bounds.
    pub fn bytes(&self) -> usize {
        self.records.iter().map(record_bytes).sum()
    }
}

/// Estimated heap bytes of one record (see [`ReadBatch::bytes`]).
pub fn record_bytes(rec: &ReadRecord) -> usize {
    rec.name.len() + rec.seq.len()
}

/// Incremental splitter of byte chunks into logical lines.
///
/// Accepts the same line endings as the monolithic parsers' `logical_lines`
/// — Unix (`\n`), Windows (`\r\n`) and classic-Mac (`\r`), in any mixture,
/// with or without a final terminator — but over a *sequence of chunks*: a
/// line (or a `\r\n` pair) split across a chunk boundary is carried over and
/// completed by the next chunk.  Feeding an empty chunk is a no-op.
#[derive(Debug, Default)]
pub struct LineAssembler {
    carry: Vec<u8>,
    pending_lf: bool,
    lines_emitted: u64,
}

impl LineAssembler {
    /// A fresh assembler with an empty carry buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of complete logical lines emitted so far (for error messages
    /// that report 1-based line numbers like the monolithic parsers).
    pub fn lines_emitted(&self) -> u64 {
        self.lines_emitted
    }

    /// Feed one chunk, calling `emit` for every logical line completed by it.
    ///
    /// Lines are borrowed from the internal carry buffer, so `emit` must copy
    /// what it keeps.  Returns the first error `emit` produces (or a UTF-8
    /// error naming the offending line).
    pub fn push(
        &mut self,
        chunk: &[u8],
        mut emit: impl FnMut(&str) -> Result<(), String>,
    ) -> Result<(), String> {
        let mut rest = chunk;
        // A '\r' at the end of the previous chunk already emitted its line;
        // an immediately following '\n' belongs to the same CRLF terminator.
        if self.pending_lf {
            self.pending_lf = false;
            if let [b'\n', tail @ ..] = rest {
                rest = tail;
            }
        }
        while let Some(pos) = rest.iter().position(|&b| b == b'\n' || b == b'\r') {
            self.carry.extend_from_slice(&rest[..pos]);
            self.emit_carry(&mut emit)?;
            if rest[pos] == b'\r' {
                match rest.get(pos + 1) {
                    Some(b'\n') => rest = &rest[pos + 2..],
                    Some(_) => rest = &rest[pos + 1..],
                    // Chunk ends exactly on the '\r': the matching '\n' may
                    // open the next chunk.
                    None => {
                        self.pending_lf = true;
                        rest = &[];
                    }
                }
            } else {
                rest = &rest[pos + 1..];
            }
        }
        self.carry.extend_from_slice(rest);
        Ok(())
    }

    /// Flush the final unterminated line, if any.
    pub fn finish(&mut self, mut emit: impl FnMut(&str) -> Result<(), String>) -> Result<(), String> {
        self.pending_lf = false;
        if self.carry.is_empty() {
            return Ok(());
        }
        self.emit_carry(&mut emit)
    }

    fn emit_carry(
        &mut self,
        emit: &mut impl FnMut(&str) -> Result<(), String>,
    ) -> Result<(), String> {
        self.lines_emitted += 1;
        let line = std::str::from_utf8(&self.carry)
            .map_err(|e| format!("line {}: invalid UTF-8: {e}", self.lines_emitted))?;
        let result = emit(line);
        self.carry.clear();
        result
    }
}

/// Shared budget-driven batch sealing for the FASTA/FASTQ batchers.
#[derive(Debug)]
struct BatchSealer {
    budget: IngestBudget,
    batch: Vec<ReadRecord>,
    batch_bytes: usize,
    first_read: usize,
    next_read: usize,
    ready: VecDeque<ReadBatch>,
}

impl BatchSealer {
    fn new(budget: IngestBudget) -> Self {
        Self {
            budget,
            batch: Vec::new(),
            batch_bytes: 0,
            first_read: 0,
            next_read: 0,
            ready: VecDeque::new(),
        }
    }

    fn push(&mut self, record: ReadRecord) {
        let bytes = record_bytes(&record);
        // Seal *before* pushing when the record would overflow the byte
        // budget, so batches stay within `max_batch_bytes` (except a single
        // read larger than the whole budget, which must go somewhere).
        if !self.batch.is_empty()
            && self.batch_bytes.saturating_add(bytes) > self.budget.max_batch_bytes
        {
            self.seal();
        }
        self.batch.push(record);
        self.batch_bytes += bytes;
        self.next_read += 1;
        if self.batch.len() >= self.budget.max_batch_reads
            || self.batch_bytes >= self.budget.max_batch_bytes
        {
            self.seal();
        }
    }

    fn seal(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        let records = std::mem::take(&mut self.batch);
        self.ready.push_back(ReadBatch { first_read: self.first_read, records });
        self.first_read = self.next_read;
        self.batch_bytes = 0;
    }

    fn next_ready(&mut self) -> Option<ReadBatch> {
        self.ready.pop_front()
    }
}

/// Incremental FASTA parser over byte chunks, yielding [`ReadBatch`]es.
///
/// Accepts exactly the inputs [`crate::fasta::parse_fasta`] accepts (same
/// record grammar, multi-line sequences, blank lines, line-ending tolerance,
/// same error wording for empty names / data before the first header /
/// invalid bases) and produces byte-identical records for any chunk size.
#[derive(Debug)]
pub struct FastaBatcher {
    lines: LineAssembler,
    current_name: Option<String>,
    current_seq: String,
    sealer: BatchSealer,
}

impl FastaBatcher {
    /// A batcher sealing batches at the given budget's batch bounds.
    pub fn new(budget: IngestBudget) -> Self {
        Self {
            lines: LineAssembler::new(),
            current_name: None,
            current_seq: String::new(),
            sealer: BatchSealer::new(budget),
        }
    }

    /// Feed one chunk of FASTA bytes (an empty chunk is a no-op).
    pub fn push_chunk(&mut self, chunk: &[u8]) -> Result<(), String> {
        let Self { lines, current_name, current_seq, sealer } = self;
        lines.push(chunk, |line| Self::take_line(line, current_name, current_seq, sealer))
    }

    /// Signal end of input: flushes the trailing record and seals the final
    /// (possibly smaller) batch.
    pub fn finish(&mut self) -> Result<(), String> {
        let Self { lines, current_name, current_seq, sealer } = self;
        lines.finish(|line| Self::take_line(line, current_name, current_seq, sealer))?;
        if let Some(name) = current_name.take() {
            sealer.push(Self::complete(name, std::mem::take(current_seq))?);
        }
        sealer.seal();
        Ok(())
    }

    /// Pop the next sealed batch, if any.
    pub fn next_batch(&mut self) -> Option<ReadBatch> {
        self.sealer.next_ready()
    }

    fn take_line(
        line: &str,
        current_name: &mut Option<String>,
        current_seq: &mut String,
        sealer: &mut BatchSealer,
    ) -> Result<(), String> {
        let line = line.trim_end();
        if line.is_empty() {
            return Ok(());
        }
        if let Some(rest) = line.strip_prefix('>') {
            if let Some(name) = current_name.take() {
                sealer.push(Self::complete(name, std::mem::take(current_seq))?);
            }
            let name = rest.split_whitespace().next().unwrap_or("").to_string();
            if name.is_empty() {
                return Err("record with empty name".to_string());
            }
            *current_name = Some(name);
        } else {
            if current_name.is_none() {
                return Err("sequence data before the first '>' header".to_string());
            }
            current_seq.push_str(line);
        }
        Ok(())
    }

    fn complete(name: String, seq: String) -> Result<ReadRecord, String> {
        let seq =
            DnaSeq::from_ascii(seq.as_bytes()).map_err(|e| format!("record {name}: {e}"))?;
        Ok(ReadRecord { name, seq })
    }
}

/// The four logical lines of a FASTQ record being assembled.
#[derive(Debug, Default)]
enum FastqField {
    /// Waiting for the next `@name` header.
    #[default]
    Header,
    /// Header seen; waiting for the sequence line.
    Seq(String),
    /// Sequence seen; waiting for the `+` separator.
    Sep(String, String),
    /// Separator seen; waiting for the quality line.
    Qual(String, String),
}

/// Incremental four-line FASTQ parser over byte chunks, yielding
/// [`ReadBatch`]es after an optional mean-quality filter.
///
/// Enforces the same strict record format as [`crate::fasta::parse_fastq`]
/// (header / one sequence line / `+` separator / quality line of matching
/// length), with the same line-ending tolerance and error wording, for any
/// chunk size.  Reads whose mean Phred quality falls below
/// `min_mean_quality` are dropped and counted, mirroring
/// [`crate::fasta::parse_fastq_filtered`].
#[derive(Debug)]
pub struct FastqBatcher {
    lines: LineAssembler,
    state: FastqField,
    min_mean_quality: f64,
    dropped_low_quality: usize,
    sealer: BatchSealer,
}

impl FastqBatcher {
    /// A batcher with the given batch budget and mean-quality floor
    /// (0.0 keeps everything).
    pub fn new(budget: IngestBudget, min_mean_quality: f64) -> Self {
        Self {
            lines: LineAssembler::new(),
            state: FastqField::Header,
            min_mean_quality,
            dropped_low_quality: 0,
            sealer: BatchSealer::new(budget),
        }
    }

    /// Feed one chunk of FASTQ bytes (an empty chunk is a no-op).
    pub fn push_chunk(&mut self, chunk: &[u8]) -> Result<(), String> {
        let Self { lines, state, min_mean_quality, dropped_low_quality, sealer } = self;
        let lineno_base = lines.lines_emitted();
        let mut lineno = lineno_base;
        lines.push(chunk, |line| {
            lineno += 1;
            Self::take_line(line, lineno, state, *min_mean_quality, dropped_low_quality, sealer)
        })
    }

    /// Signal end of input: rejects a truncated trailing record and seals the
    /// final batch.
    pub fn finish(&mut self) -> Result<(), String> {
        let Self { lines, state, min_mean_quality, dropped_low_quality, sealer } = self;
        let mut lineno = lines.lines_emitted();
        lines.finish(|line| {
            lineno += 1;
            Self::take_line(line, lineno, state, *min_mean_quality, dropped_low_quality, sealer)
        })?;
        match std::mem::take(state) {
            FastqField::Header => {}
            FastqField::Seq(name) => return Err(format!("record {name}: missing sequence line")),
            FastqField::Sep(name, _) => {
                return Err(format!("record {name}: missing '+' separator"))
            }
            FastqField::Qual(name, _) => {
                return Err(format!("record {name}: missing quality line"))
            }
        }
        sealer.seal();
        Ok(())
    }

    /// Pop the next sealed batch, if any.
    pub fn next_batch(&mut self) -> Option<ReadBatch> {
        self.sealer.next_ready()
    }

    /// Reads dropped by the mean-quality filter so far.
    pub fn dropped_low_quality(&self) -> usize {
        self.dropped_low_quality
    }

    fn take_line(
        line: &str,
        lineno: u64,
        state: &mut FastqField,
        min_mean_quality: f64,
        dropped_low_quality: &mut usize,
        sealer: &mut BatchSealer,
    ) -> Result<(), String> {
        if line.trim_end().is_empty() {
            return Ok(());
        }
        *state = match std::mem::take(state) {
            FastqField::Header => {
                let header = line.trim_end();
                let Some(rest) = header.strip_prefix('@') else {
                    return Err(format!("line {lineno}: expected '@' header, found {header:?}"));
                };
                let name = rest.split_whitespace().next().unwrap_or("").to_string();
                if name.is_empty() {
                    return Err(format!("line {lineno}: record with empty name"));
                }
                FastqField::Seq(name)
            }
            FastqField::Seq(name) => FastqField::Sep(name, line.trim_end().to_string()),
            FastqField::Sep(name, seq) => {
                let sep = line.trim_end();
                if !sep.starts_with('+') {
                    return Err(format!(
                        "line {lineno}: record {name}: expected '+' separator, found {sep:?}"
                    ));
                }
                FastqField::Qual(name, seq)
            }
            FastqField::Qual(name, seq) => {
                let (record, mean_q) = validate_fastq_record(name, seq, line.trim_end().to_string())?;
                if mean_q >= min_mean_quality {
                    sealer.push(record);
                } else {
                    *dropped_low_quality += 1;
                }
                FastqField::Header
            }
        };
        Ok(())
    }
}

/// Iterator state shared by the text- and file-backed FASTA batch streams.
enum FastaSource<'a> {
    Text { text: &'a [u8], pos: usize },
    File { file: std::fs::File, buf: Vec<u8> },
}

/// Iterator of [`ReadBatch`]es from FASTA input fed through the chunk path.
///
/// Yields `Err` at most once (the first parse/I/O error) and then fuses.
pub struct FastaBatches<'a> {
    source: FastaSource<'a>,
    chunk_bytes: usize,
    batcher: FastaBatcher,
    finished: bool,
    failed: bool,
}

impl Iterator for FastaBatches<'_> {
    type Item = Result<ReadBatch, String>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if let Some(batch) = self.batcher.next_batch() {
                return Some(Ok(batch));
            }
            if self.finished {
                return None;
            }
            if let Err(e) = self.step() {
                self.failed = true;
                return Some(Err(e));
            }
        }
    }
}

impl FastaBatches<'_> {
    /// Read and feed one chunk, or finish the batcher at end of input.
    fn step(&mut self) -> Result<(), String> {
        match &mut self.source {
            FastaSource::Text { text, pos } => {
                if *pos >= text.len() {
                    self.finished = true;
                    return self.batcher.finish();
                }
                let end = (*pos + self.chunk_bytes).min(text.len());
                let chunk = &text[*pos..end];
                *pos = end;
                self.batcher.push_chunk(chunk)
            }
            FastaSource::File { file, buf } => {
                buf.resize(self.chunk_bytes, 0);
                let n = file.read(buf).map_err(|e| format!("reading FASTA chunk: {e}"))?;
                if n == 0 {
                    self.finished = true;
                    return self.batcher.finish();
                }
                self.batcher.push_chunk(&buf[..n])
            }
        }
    }
}

/// Stream batches from in-memory FASTA text, fed in `chunk_bytes`-sized
/// chunks through the same incremental path as the file reader (so tests can
/// pin chunk-boundary behaviour without touching disk).
pub fn fasta_batches(text: &str, chunk_bytes: usize, budget: IngestBudget) -> FastaBatches<'_> {
    assert!(chunk_bytes > 0, "chunk size must be positive");
    FastaBatches {
        source: FastaSource::Text { text: text.as_bytes(), pos: 0 },
        chunk_bytes,
        batcher: FastaBatcher::new(budget),
        finished: false,
        failed: false,
    }
}

/// Stream batches from a FASTA file, reading `chunk_bytes` at a time: peak
/// memory is one chunk plus one in-flight batch, independent of file size.
pub fn fasta_batches_file(
    path: impl AsRef<Path>,
    chunk_bytes: usize,
    budget: IngestBudget,
) -> Result<FastaBatches<'static>, String> {
    assert!(chunk_bytes > 0, "chunk size must be positive");
    let file = std::fs::File::open(path.as_ref())
        .map_err(|e| format!("opening {}: {e}", path.as_ref().display()))?;
    Ok(FastaBatches {
        source: FastaSource::File { file, buf: Vec::new() },
        chunk_bytes,
        batcher: FastaBatcher::new(budget),
        finished: false,
        failed: false,
    })
}

/// Iterator of quality-filtered [`ReadBatch`]es from FASTQ text fed through
/// the chunk path (the FASTQ twin of [`fasta_batches`]).
pub struct FastqBatches<'a> {
    text: &'a [u8],
    pos: usize,
    chunk_bytes: usize,
    batcher: FastqBatcher,
    finished: bool,
    failed: bool,
}

impl Iterator for FastqBatches<'_> {
    type Item = Result<ReadBatch, String>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if let Some(batch) = self.batcher.next_batch() {
                return Some(Ok(batch));
            }
            if self.finished {
                return None;
            }
            let result = if self.pos >= self.text.len() {
                self.finished = true;
                self.batcher.finish()
            } else {
                let end = (self.pos + self.chunk_bytes).min(self.text.len());
                let chunk = &self.text[self.pos..end];
                self.pos = end;
                self.batcher.push_chunk(chunk)
            };
            if let Err(e) = result {
                self.failed = true;
                return Some(Err(e));
            }
        }
    }
}

impl FastqBatches<'_> {
    /// Reads dropped by the mean-quality filter so far.
    pub fn dropped_low_quality(&self) -> usize {
        self.batcher.dropped_low_quality()
    }
}

/// Stream quality-filtered batches from in-memory FASTQ text in
/// `chunk_bytes`-sized chunks.
pub fn fastq_batches(
    text: &str,
    chunk_bytes: usize,
    budget: IngestBudget,
    min_mean_quality: f64,
) -> FastqBatches<'_> {
    assert!(chunk_bytes > 0, "chunk size must be positive");
    FastqBatches {
        text: text.as_bytes(),
        pos: 0,
        chunk_bytes,
        batcher: FastqBatcher::new(budget, min_mean_quality),
        finished: false,
        failed: false,
    }
}

/// Stream batch views over an already-resident [`ReadSet`].
///
/// The streaming k-mer counter consumes each pass through a fresh batch
/// iterator; when the reads are already in memory (the pipeline keeps them
/// for alignment and consensus anyway), replaying supersteps from the
/// `ReadSet` avoids re-parsing while keeping the per-superstep exchange
/// buffers bounded by the same budget.  Each batch clones its bounded slice
/// of records — at most one batch of copies is alive at a time.
pub fn read_set_batches(
    reads: &ReadSet,
    budget: IngestBudget,
) -> impl Iterator<Item = Result<ReadBatch, String>> + '_ {
    let mut next_read = 0usize;
    std::iter::from_fn(move || {
        if next_read >= reads.len() {
            return None;
        }
        let first_read = next_read;
        let mut records = Vec::new();
        let mut bytes = 0usize;
        while next_read < reads.len() && records.len() < budget.max_batch_reads {
            let rec = reads.record(next_read);
            let rec_bytes = record_bytes(rec);
            if !records.is_empty() && bytes.saturating_add(rec_bytes) > budget.max_batch_bytes {
                break;
            }
            records.push(rec.clone());
            bytes += rec_bytes;
            next_read += 1;
            if bytes >= budget.max_batch_bytes {
                break;
            }
        }
        Some(Ok(ReadBatch { first_read, records }))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fasta::{parse_fasta, parse_fastq, parse_fastq_filtered, write_fasta};
    use crate::simulate::DatasetSpec;

    /// Collect every record from a batch stream, checking `first_read`
    /// bookkeeping along the way.
    fn collect(iter: impl Iterator<Item = Result<ReadBatch, String>>) -> Result<ReadSet, String> {
        let mut rs = ReadSet::new();
        for batch in iter {
            let batch = batch?;
            assert_eq!(batch.first_read, rs.len(), "batch first_read must be contiguous");
            assert!(!batch.is_empty(), "batchers must not emit empty batches");
            for rec in batch.records {
                rs.push(rec);
            }
        }
        Ok(rs)
    }

    const SAMPLE: &str = ">read1 some description\nACGT\nACGT\n\n>read2\nTTTT\n>read3\nG\n";
    const FASTQ: &str = "@read1 instrument=x\nACGT\n+\nII5I\n@read2\nTTTTT\n+read2\n!!!!!\n";

    #[test]
    fn chunked_fasta_matches_monolithic_at_every_chunk_size() {
        let expected = parse_fasta(SAMPLE).unwrap();
        for chunk_bytes in 1..=SAMPLE.len() + 1 {
            let got =
                collect(fasta_batches(SAMPLE, chunk_bytes, IngestBudget::unbounded())).unwrap();
            assert_eq!(got, expected, "chunk_bytes={chunk_bytes}");
        }
    }

    #[test]
    fn chunked_fasta_record_straddles_chunk_boundary() {
        // chunk_bytes=3 splits the header ">read1 som|e descript|ion" and the
        // sequence lines across many chunks; the records must still assemble.
        let got = collect(fasta_batches(SAMPLE, 3, IngestBudget::with_batch_reads(1))).unwrap();
        assert_eq!(got, parse_fasta(SAMPLE).unwrap());
    }

    #[test]
    fn chunked_fasta_crlf_and_no_final_newline() {
        // CRLF endings with the terminator pair split across a chunk
        // boundary, and a final line with no terminator at all.
        let crlf = SAMPLE.replace('\n', "\r\n");
        let expected = parse_fasta(&crlf).unwrap();
        for chunk_bytes in 1..=crlf.len() {
            let got = collect(fasta_batches(&crlf, chunk_bytes, IngestBudget::unbounded()))
                .unwrap();
            assert_eq!(got, expected, "CRLF chunk_bytes={chunk_bytes}");
        }
        let unterminated = ">x\nACGT";
        for chunk_bytes in [1, 2, 3, 100] {
            let got =
                collect(fasta_batches(unterminated, chunk_bytes, IngestBudget::unbounded()))
                    .unwrap();
            assert_eq!(got, parse_fasta(unterminated).unwrap(), "chunk_bytes={chunk_bytes}");
        }
        // Lone-CR (classic Mac) through the chunked path too.
        let cr = SAMPLE.replace('\n', "\r");
        let got = collect(fasta_batches(&cr, 2, IngestBudget::unbounded())).unwrap();
        assert_eq!(got, parse_fasta(SAMPLE).unwrap());
    }

    #[test]
    fn empty_trailing_chunk_is_a_no_op() {
        let mut batcher = FastaBatcher::new(IngestBudget::unbounded());
        batcher.push_chunk(SAMPLE.as_bytes()).unwrap();
        batcher.push_chunk(b"").unwrap();
        batcher.push_chunk(b"").unwrap();
        batcher.finish().unwrap();
        let mut rs = ReadSet::new();
        while let Some(batch) = batcher.next_batch() {
            for rec in batch.records {
                rs.push(rec);
            }
        }
        assert_eq!(rs, parse_fasta(SAMPLE).unwrap());
        // Empty input entirely: no batches at all.
        assert_eq!(
            collect(fasta_batches("", 8, IngestBudget::unbounded())).unwrap(),
            ReadSet::new()
        );
    }

    #[test]
    fn batch_bounds_seal_batches() {
        let ds = DatasetSpec::Tiny.generate(3);
        let text = write_fasta(&ds.reads);
        // Reads bound: ceil(n / 7) batches of at most 7 reads.
        let batches: Vec<ReadBatch> =
            fasta_batches(&text, 4096, IngestBudget::with_batch_reads(7))
                .map(|b| b.unwrap())
                .collect();
        assert_eq!(batches.len(), ds.reads.len().div_ceil(7));
        assert!(batches.iter().all(|b| b.len() <= 7));
        assert_eq!(batches.iter().map(ReadBatch::len).sum::<usize>(), ds.reads.len());

        // Bytes bound: every batch stays under the cap (no read is larger
        // than the cap in this dataset), and nothing is lost.
        let cap = 4000usize;
        let batches: Vec<ReadBatch> =
            fasta_batches(&text, 4096, IngestBudget::with_batch_bytes(cap))
                .map(|b| b.unwrap())
                .collect();
        assert!(batches.len() > 1);
        assert!(batches.iter().all(|b| b.bytes() <= cap), "batch bytes over cap");
        assert_eq!(batches.iter().map(ReadBatch::len).sum::<usize>(), ds.reads.len());

        // A single read larger than the byte cap still forms its own batch.
        let big = ">big\nACGTACGTACGTACGT\n";
        let batches: Vec<ReadBatch> =
            fasta_batches(big, 8, IngestBudget::with_batch_bytes(4)).map(|b| b.unwrap()).collect();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 1);
    }

    #[test]
    fn fasta_errors_match_the_monolithic_parser() {
        for bad in ["ACGT\n>x\nACGT\n", ">\nACGT\n", ">bad\nACGN\n"] {
            let mono = parse_fasta(bad).unwrap_err();
            let streamed = collect(fasta_batches(bad, 4, IngestBudget::unbounded())).unwrap_err();
            assert_eq!(streamed, mono, "input {bad:?}");
        }
        // The stream fuses after an error.
        let mut iter = fasta_batches(">bad\nACGN\n>ok\nACGT\n", 4, IngestBudget::unbounded());
        assert!(iter.next().unwrap().is_err());
        assert!(iter.next().is_none());
    }

    #[test]
    fn chunked_fastq_matches_monolithic_at_every_chunk_size() {
        let (expected, _) = parse_fastq(FASTQ).unwrap();
        for chunk_bytes in 1..=FASTQ.len() + 1 {
            let got = collect(fastq_batches(FASTQ, chunk_bytes, IngestBudget::unbounded(), 0.0))
                .unwrap();
            assert_eq!(got, expected, "chunk_bytes={chunk_bytes}");
        }
        // CRLF + truncated final newline through the chunked path, record
        // fields (header/sequence/quality) straddling every boundary.
        let crlf = "@x\r\nACGT\r\n+\r\nIIII";
        let (expected, _) = parse_fastq(crlf).unwrap();
        for chunk_bytes in 1..=crlf.len() {
            let got = collect(fastq_batches(crlf, chunk_bytes, IngestBudget::unbounded(), 0.0))
                .unwrap();
            assert_eq!(got, expected, "CRLF chunk_bytes={chunk_bytes}");
        }
    }

    #[test]
    fn chunked_fastq_filters_by_mean_quality_and_counts_drops() {
        let (expected, stats) = parse_fastq_filtered(FASTQ, 10.0).unwrap();
        let mut iter = fastq_batches(FASTQ, 5, IngestBudget::unbounded(), 10.0);
        let mut rs = ReadSet::new();
        for batch in &mut iter {
            for rec in batch.unwrap().records {
                rs.push(rec);
            }
        }
        assert_eq!(rs, expected);
        assert_eq!(iter.dropped_low_quality(), stats.dropped_low_quality);
    }

    #[test]
    fn chunked_fastq_rejects_malformed_records_like_the_monolithic_parser() {
        for bad in [
            "@x\nACGT\nIIII\n",          // missing separator
            "@x\nACGT\n+\nII\n",         // quality length mismatch
            "@x\nACGT\n+\n",             // missing quality line
            "@x\nACGT\n",                // missing separator (truncated)
            "@x\n",                      // missing sequence line
            "ACGT\n+\nIIII\n",           // missing '@'
            "@\nACGT\n+\nIIII\n",        // empty name
            "@x\nACGN\n+\nIIII\n",       // invalid base
            "@x\r\nACGT\r\n+\r\nII\r\n", // CRLF quality length mismatch
        ] {
            let mono = parse_fastq(bad).unwrap_err();
            let streamed =
                collect(fastq_batches(bad, 3, IngestBudget::unbounded(), 0.0)).unwrap_err();
            assert_eq!(streamed, mono, "input {bad:?}");
        }
    }

    #[test]
    fn file_backed_batches_match_text_batches() {
        let ds = DatasetSpec::Tiny.generate(5);
        let text = write_fasta(&ds.reads);
        let dir = std::env::temp_dir().join("dibella_seq_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chunked.fa");
        std::fs::write(&path, &text).unwrap();
        let budget = IngestBudget::with_batch_reads(5);
        let from_file: Vec<ReadBatch> =
            fasta_batches_file(&path, 513, budget).unwrap().map(|b| b.unwrap()).collect();
        let from_text: Vec<ReadBatch> =
            fasta_batches(&text, 513, budget).map(|b| b.unwrap()).collect();
        assert_eq!(from_file, from_text);
        assert_eq!(collect(from_file.into_iter().map(Ok)).unwrap(), ds.reads);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_set_batches_cover_the_set_in_order() {
        let ds = DatasetSpec::Tiny.generate(6);
        for max_reads in [1usize, 3, 7, usize::MAX] {
            let budget = IngestBudget::with_batch_reads(max_reads);
            let got = collect(read_set_batches(&ds.reads, budget)).unwrap();
            assert_eq!(got, ds.reads, "max_batch_reads={max_reads}");
            let n_batches = read_set_batches(&ds.reads, budget).count();
            assert_eq!(n_batches, ds.reads.len().div_ceil(max_reads.min(ds.reads.len())));
        }
        assert_eq!(read_set_batches(&ReadSet::new(), IngestBudget::unbounded()).count(), 0);
    }
}

//! The DNA alphabet and sequence type.
//!
//! Bases are stored as 2-bit codes (`A=0, C=1, G=2, T=3`), the encoding the
//! paper assumes when it charges `k/4` bytes per k-mer in the communication
//! analysis.  A [`DnaSeq`] keeps one code per base in a `Vec<u8>` for cheap
//! random access; the packed representation used on the wire lives in
//! [`crate::kmer`] (k-mers) and in [`DnaSeq::to_packed`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which strand a sequence (or an alignment) refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strand {
    /// The sequence as stored.
    Forward,
    /// The reverse complement of the stored sequence.
    Reverse,
}

impl Strand {
    /// The opposite strand.
    pub fn flip(self) -> Strand {
        match self {
            Strand::Forward => Strand::Reverse,
            Strand::Reverse => Strand::Forward,
        }
    }
}

/// 2-bit code of a base character.
///
/// Returns `None` for characters outside `{A, C, G, T}` (case-insensitive);
/// ambiguous IUPAC codes are rejected rather than silently mapped.
pub fn base_to_code(base: u8) -> Option<u8> {
    match base {
        b'A' | b'a' => Some(0),
        b'C' | b'c' => Some(1),
        b'G' | b'g' => Some(2),
        b'T' | b't' => Some(3),
        _ => None,
    }
}

/// ASCII character of a 2-bit code.
pub fn code_to_base(code: u8) -> u8 {
    match code {
        0 => b'A',
        1 => b'C',
        2 => b'G',
        3 => b'T',
        _ => panic!("invalid 2-bit base code {code}"),
    }
}

/// Complement of a 2-bit code (`A<->T`, `C<->G`).
pub fn complement_code(code: u8) -> u8 {
    debug_assert!(code < 4);
    3 - code
}

/// A DNA sequence stored as 2-bit codes, one byte per base.
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct DnaSeq {
    codes: Vec<u8>,
}

impl DnaSeq {
    /// The empty sequence.
    pub fn new() -> Self {
        Self { codes: Vec::new() }
    }

    /// Parse from ASCII.  Characters outside `{A,C,G,T,a,c,g,t}` are an error.
    pub fn from_ascii(s: &[u8]) -> Result<Self, String> {
        let mut codes = Vec::with_capacity(s.len());
        for (i, &b) in s.iter().enumerate() {
            match base_to_code(b) {
                Some(c) => codes.push(c),
                None => return Err(format!("invalid base {:?} at position {i}", b as char)),
            }
        }
        Ok(Self { codes })
    }

    /// Build from 2-bit codes.
    ///
    /// # Panics
    /// Panics if any code is not in `0..4`.
    pub fn from_codes(codes: Vec<u8>) -> Self {
        assert!(codes.iter().all(|&c| c < 4), "codes must be 2-bit");
        Self { codes }
    }

    /// Length in bases.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The 2-bit code at position `i`.
    pub fn code(&self, i: usize) -> u8 {
        self.codes[i]
    }

    /// The underlying code slice.
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Append one base code.
    pub fn push_code(&mut self, code: u8) {
        assert!(code < 4, "codes must be 2-bit");
        self.codes.push(code);
    }

    /// The reverse complement.
    pub fn reverse_complement(&self) -> DnaSeq {
        DnaSeq {
            codes: self.codes.iter().rev().map(|&c| complement_code(c)).collect(),
        }
    }

    /// A subsequence `[start, end)` (clamped to the sequence length).
    pub fn slice(&self, start: usize, end: usize) -> DnaSeq {
        let end = end.min(self.len());
        let start = start.min(end);
        DnaSeq { codes: self.codes[start..end].to_vec() }
    }

    /// Render as an ASCII string.
    pub fn to_ascii(&self) -> String {
        self.codes.iter().map(|&c| code_to_base(c) as char).collect()
    }

    /// Pack into 2 bits per base (the wire format assumed by the paper's
    /// `k/4` bytes-per-k-mer accounting).  The final byte is zero-padded.
    pub fn to_packed(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len().div_ceil(4)];
        for (i, &c) in self.codes.iter().enumerate() {
            out[i / 4] |= c << ((i % 4) * 2);
        }
        out
    }

    /// Unpack a 2-bit packed buffer of `len` bases.
    pub fn from_packed(packed: &[u8], len: usize) -> Self {
        assert!(packed.len() * 4 >= len, "packed buffer too short for {len} bases");
        let codes = (0..len).map(|i| (packed[i / 4] >> ((i % 4) * 2)) & 3).collect();
        Self { codes }
    }

    /// This sequence followed by `other` (cloned) — e.g. joining the two
    /// segments of a simulated chimeric read.
    pub fn concat(&self, other: &DnaSeq) -> DnaSeq {
        let mut codes = Vec::with_capacity(self.len() + other.len());
        codes.extend_from_slice(&self.codes);
        codes.extend_from_slice(&other.codes);
        DnaSeq { codes }
    }

    /// The sequence in the given orientation (cloned).
    pub fn oriented(&self, strand: Strand) -> DnaSeq {
        match strand {
            Strand::Forward => self.clone(),
            Strand::Reverse => self.reverse_complement(),
        }
    }
}

impl fmt::Debug for DnaSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len() <= 40 {
            write!(f, "DnaSeq({})", self.to_ascii())
        } else {
            write!(f, "DnaSeq(len={}, {}...)", self.len(), self.slice(0, 30).to_ascii())
        }
    }
}

impl std::str::FromStr for DnaSeq {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DnaSeq::from_ascii(s.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ascii_roundtrip() {
        let s: DnaSeq = "ACGTACGT".parse().unwrap();
        assert_eq!(s.len(), 8);
        assert_eq!(s.to_ascii(), "ACGTACGT");
        assert_eq!(s.code(0), 0);
        assert_eq!(s.code(3), 3);
    }

    #[test]
    fn lowercase_is_accepted() {
        let s: DnaSeq = "acgt".parse().unwrap();
        assert_eq!(s.to_ascii(), "ACGT");
    }

    #[test]
    fn invalid_characters_are_rejected() {
        assert!(DnaSeq::from_ascii(b"ACGN").is_err());
        assert!(DnaSeq::from_ascii(b"ACG-T").is_err());
        assert!("AC GT".parse::<DnaSeq>().is_err());
    }

    #[test]
    fn reverse_complement_matches_paper_example() {
        // Section II: v = ATTCG, v' = CGAAT.
        let v: DnaSeq = "ATTCG".parse().unwrap();
        assert_eq!(v.reverse_complement().to_ascii(), "CGAAT");
    }

    #[test]
    fn complement_codes_pair_correctly() {
        assert_eq!(complement_code(0), 3); // A -> T
        assert_eq!(complement_code(1), 2); // C -> G
        assert_eq!(complement_code(2), 1); // G -> C
        assert_eq!(complement_code(3), 0); // T -> A
    }

    #[test]
    fn slice_clamps_to_length() {
        let s: DnaSeq = "ACGTACGT".parse().unwrap();
        assert_eq!(s.slice(2, 5).to_ascii(), "GTA");
        assert_eq!(s.slice(6, 100).to_ascii(), "GT");
        assert_eq!(s.slice(10, 20).len(), 0);
    }

    #[test]
    fn packing_roundtrip_various_lengths() {
        for len in [0usize, 1, 3, 4, 5, 8, 13] {
            let seq = DnaSeq::from_codes((0..len).map(|i| (i % 4) as u8).collect());
            let packed = seq.to_packed();
            assert_eq!(packed.len(), len.div_ceil(4));
            assert_eq!(DnaSeq::from_packed(&packed, len), seq);
        }
    }

    #[test]
    fn concat_joins_sequences() {
        let a: DnaSeq = "ACGT".parse().unwrap();
        let b: DnaSeq = "TT".parse().unwrap();
        assert_eq!(a.concat(&b).to_ascii(), "ACGTTT");
        assert_eq!(a.concat(&DnaSeq::new()), a);
        assert_eq!(DnaSeq::new().concat(&b), b);
    }

    #[test]
    fn oriented_respects_strand() {
        let s: DnaSeq = "AACG".parse().unwrap();
        assert_eq!(s.oriented(Strand::Forward), s);
        assert_eq!(s.oriented(Strand::Reverse).to_ascii(), "CGTT");
        assert_eq!(Strand::Forward.flip(), Strand::Reverse);
        assert_eq!(Strand::Reverse.flip(), Strand::Forward);
    }

    fn arb_seq() -> impl Strategy<Value = DnaSeq> {
        proptest::collection::vec(0u8..4, 0..200).prop_map(DnaSeq::from_codes)
    }

    proptest! {
        #[test]
        fn prop_reverse_complement_is_involution(s in arb_seq()) {
            prop_assert_eq!(s.reverse_complement().reverse_complement(), s);
        }

        #[test]
        fn prop_ascii_roundtrip(s in arb_seq()) {
            let ascii = s.to_ascii();
            let back: DnaSeq = ascii.parse().unwrap();
            prop_assert_eq!(back, s);
        }

        #[test]
        fn prop_packed_roundtrip(s in arb_seq()) {
            let packed = s.to_packed();
            prop_assert_eq!(DnaSeq::from_packed(&packed, s.len()), s);
        }

        #[test]
        fn prop_revcomp_preserves_length_and_gc(s in arb_seq()) {
            let rc = s.reverse_complement();
            prop_assert_eq!(rc.len(), s.len());
            // GC content is invariant under reverse complement.
            let gc = |x: &DnaSeq| x.codes().iter().filter(|&&c| c == 1 || c == 2).count();
            prop_assert_eq!(gc(&rc), gc(&s));
        }
    }
}

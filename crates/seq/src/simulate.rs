//! Synthetic genomes and PacBio-CLR-like long reads.
//!
//! The paper evaluates on real PacBio CLR datasets (Table IV: C. elegans at
//! 40× depth, ~11.2 kb mean read length, 13% error; H. sapiens at 10×,
//! ~7.4 kb, 15% error) which are tens of gigabytes and not redistributable
//! here.  This module provides the substitution documented in DESIGN.md: a
//! genome generator (with controllable repeat content) and a long-read
//! simulator that reproduces the statistics the pipeline's behaviour depends
//! on — depth of coverage `d`, read-length distribution `l`, error rate, and
//! strand symmetry — so the k-mer spectrum, overlap density (`c`, `r` in
//! Table III) and transitive-reduction workload are realistic at reduced scale.

use crate::dna::{DnaSeq, Strand};
use crate::fasta::{ReadRecord, ReadSet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic genome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenomeConfig {
    /// Genome length in bases.
    pub length: usize,
    /// Fraction of the genome covered by copies of repeated segments
    /// (0.0 = repeat-free).  Repeats are what make transitive reduction and
    /// string graphs interesting, so the presets keep a modest amount.
    pub repeat_fraction: f64,
    /// Length of each repeated segment.
    pub repeat_length: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenomeConfig {
    fn default() -> Self {
        Self { length: 100_000, repeat_fraction: 0.05, repeat_length: 500, seed: 7 }
    }
}

/// Generate a random genome with the requested repeat content.
pub fn generate_genome(config: &GenomeConfig) -> DnaSeq {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut codes: Vec<u8> = (0..config.length).map(|_| rng.gen_range(0..4u8)).collect();

    if config.repeat_fraction > 0.0 && config.repeat_length > 0 && config.length > config.repeat_length * 2 {
        let copies = ((config.length as f64 * config.repeat_fraction)
            / config.repeat_length as f64)
            .round() as usize;
        if copies >= 2 {
            // Pick one template segment and paste it at random positions.
            let template_start = rng.gen_range(0..config.length - config.repeat_length);
            let template: Vec<u8> =
                codes[template_start..template_start + config.repeat_length].to_vec();
            for _ in 0..copies {
                let dst = rng.gen_range(0..config.length - config.repeat_length);
                codes[dst..dst + config.repeat_length].copy_from_slice(&template);
            }
        }
    }
    DnaSeq::from_codes(codes)
}

/// Parameters of the long-read simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadSimConfig {
    /// Target depth of coverage `d` (mean number of reads covering a base).
    pub depth: f64,
    /// Mean read length `l` in bases.
    pub mean_read_length: usize,
    /// Minimum read length (reads shorter than this are discarded).
    pub min_read_length: usize,
    /// Standard deviation of the read length distribution.
    pub read_length_sd: usize,
    /// Per-base error probability (substitutions + indels combined).
    pub error_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ReadSimConfig {
    fn default() -> Self {
        Self {
            depth: 20.0,
            mean_read_length: 8_000,
            min_read_length: 1_000,
            read_length_sd: 2_000,
            error_rate: 0.14,
            seed: 13,
        }
    }
}

/// Where a simulated read came from on the reference genome (ground truth for
/// validating overlaps and string graphs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadOrigin {
    /// Start position on the forward strand of the genome.
    pub start: usize,
    /// Number of genome bases covered by the read (before errors).
    pub span: usize,
    /// Which strand the read was sampled from.
    pub strand: Strand,
}

impl ReadOrigin {
    /// End position (exclusive) on the forward strand.
    pub fn end(&self) -> usize {
        self.start + self.span
    }

    /// Length of overlap between the genomic intervals of two reads.
    pub fn overlap_with(&self, other: &ReadOrigin) -> usize {
        let start = self.start.max(other.start);
        let end = self.end().min(other.end());
        end.saturating_sub(start)
    }

    /// Whether this read's interval fully contains the other's.
    pub fn contains(&self, other: &ReadOrigin) -> bool {
        self.start <= other.start && other.end() <= self.end()
    }
}

/// A complete simulated dataset: the reference, the reads, their origins and
/// the configuration that produced them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimulatedDataset {
    /// Human-readable dataset label (e.g. "C. elegans (scaled)").
    pub label: String,
    /// The reference genome the reads were sampled from.
    pub genome: DnaSeq,
    /// The simulated reads.
    pub reads: ReadSet,
    /// Ground-truth origin of every read (same indexing as `reads`).
    pub origins: Vec<ReadOrigin>,
    /// The read-simulation parameters used.
    pub config: ReadSimConfig,
}

impl SimulatedDataset {
    /// Achieved depth of coverage (total read bases / genome length).
    pub fn achieved_depth(&self) -> f64 {
        self.reads.total_bases() as f64 / self.genome.len() as f64
    }

    /// Number of reads.
    pub fn num_reads(&self) -> usize {
        self.reads.len()
    }

    /// Mean read length.
    pub fn mean_read_length(&self) -> f64 {
        self.reads.mean_read_length()
    }

    /// Ground-truth overlap length (in genome bases) between two reads, or 0.
    pub fn true_overlap(&self, i: usize, j: usize) -> usize {
        self.origins[i].overlap_with(&self.origins[j])
    }

    /// Input size in megabytes of FASTA text (roughly; one byte per base).
    pub fn input_size_mb(&self) -> f64 {
        self.reads.total_bases() as f64 / 1.0e6
    }
}

/// Sample reads from `genome` according to `config`.
pub fn simulate_reads(genome: &DnaSeq, config: &ReadSimConfig) -> (ReadSet, Vec<ReadOrigin>) {
    assert!(genome.len() > config.min_read_length, "genome shorter than the minimum read length");
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let target_bases = (genome.len() as f64 * config.depth) as usize;
    let mut reads = ReadSet::new();
    let mut origins = Vec::new();
    let mut sampled_bases = 0usize;
    let mut read_id = 0usize;

    while sampled_bases < target_bases {
        // Draw a length from a clamped normal distribution.
        let len = sample_length(&mut rng, config, genome.len());
        let start = rng.gen_range(0..=genome.len() - len);
        let strand = if rng.gen_bool(0.5) { Strand::Forward } else { Strand::Reverse };
        let template = genome.slice(start, start + len).oriented(strand);
        let seq = apply_errors(&template, config.error_rate, &mut rng);
        sampled_bases += len;
        reads.push(ReadRecord { name: format!("read{read_id:06}"), seq });
        origins.push(ReadOrigin { start, span: len, strand });
        read_id += 1;
    }
    (reads, origins)
}

fn sample_length(rng: &mut SmallRng, config: &ReadSimConfig, genome_len: usize) -> usize {
    // Box-Muller for a normal sample; clamp to [min_read_length, genome_len].
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let len = config.mean_read_length as f64 + z * config.read_length_sd as f64;
    (len.round() as isize)
        .clamp(config.min_read_length as isize, genome_len as isize) as usize
}

/// Apply a PacBio-CLR-like error model: at each template position an error
/// occurs with probability `error_rate`; errors are 40% substitutions, 40%
/// insertions and 20% deletions (CLR error profiles are indel-dominated).
pub fn apply_errors(template: &DnaSeq, error_rate: f64, rng: &mut SmallRng) -> DnaSeq {
    if error_rate <= 0.0 {
        return template.clone();
    }
    let mut out = DnaSeq::new();
    for i in 0..template.len() {
        let base = template.code(i);
        if rng.gen_bool(error_rate) {
            let kind: f64 = rng.gen();
            if kind < 0.4 {
                // Substitution with a different base.
                let sub = (base + rng.gen_range(1..4u8)) % 4;
                out.push_code(sub);
            } else if kind < 0.8 {
                // Insertion: emit a random base, then the true base.
                out.push_code(rng.gen_range(0..4u8));
                out.push_code(base);
            } else {
                // Deletion: skip the true base.
            }
        } else {
            out.push_code(base);
        }
    }
    out
}

/// Named dataset presets mirroring Table IV of the paper, scaled down so they
/// run on one machine.  The `scale` argument multiplies the genome size; the
/// depth, read length and error rate match the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetSpec {
    /// E. coli–like: 30× depth, ~9 kb reads, 13% error (Table III row 1).
    EColiLike,
    /// C. elegans–like: 40× depth, ~11.2 kb reads, 13% error (Table IV row 1).
    CElegansLike,
    /// H. sapiens–like: 10× depth, ~7.4 kb reads, 15% error (Table IV row 2).
    HSapiensLike,
    /// A small benchmark dataset: big enough that kernel differences are
    /// measurable, small enough for CI smoke benches (used by the spgemm
    /// bench that produces `BENCH_spgemm.json`).
    Small,
    /// A tiny smoke-test dataset for unit and integration tests.
    Tiny,
}

impl DatasetSpec {
    /// Human-readable label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            DatasetSpec::EColiLike => "E. coli (scaled)",
            DatasetSpec::CElegansLike => "C. elegans (scaled)",
            DatasetSpec::HSapiensLike => "H. sapiens (scaled)",
            DatasetSpec::Small => "small (bench)",
            DatasetSpec::Tiny => "tiny",
        }
    }

    /// Paper values: depth of coverage.
    pub fn depth(&self) -> f64 {
        match self {
            DatasetSpec::EColiLike => 30.0,
            DatasetSpec::CElegansLike => 40.0,
            DatasetSpec::HSapiensLike => 10.0,
            DatasetSpec::Small => 25.0,
            DatasetSpec::Tiny => 12.0,
        }
    }

    /// Paper values: mean read length (bases).
    pub fn mean_read_length(&self) -> usize {
        match self {
            DatasetSpec::EColiLike => 9_000,
            DatasetSpec::CElegansLike => 11_241,
            DatasetSpec::HSapiensLike => 7_401,
            DatasetSpec::Small => 1_000,
            DatasetSpec::Tiny => 600,
        }
    }

    /// Paper values: per-base error rate.
    pub fn error_rate(&self) -> f64 {
        match self {
            DatasetSpec::EColiLike => 0.13,
            DatasetSpec::CElegansLike => 0.13,
            DatasetSpec::HSapiensLike => 0.15,
            DatasetSpec::Small => 0.10,
            DatasetSpec::Tiny => 0.05,
        }
    }

    /// Genome size of the *real* organism in megabases (for documentation).
    pub fn real_genome_size_mb(&self) -> f64 {
        match self {
            DatasetSpec::EColiLike => 4.6,
            DatasetSpec::CElegansLike => 100.0,
            DatasetSpec::HSapiensLike => 3000.0,
            DatasetSpec::Small => 0.06,
            DatasetSpec::Tiny => 0.004,
        }
    }

    /// Default scaled genome length in bases used by the harnesses.
    pub fn default_genome_length(&self) -> usize {
        match self {
            DatasetSpec::EColiLike => 200_000,
            DatasetSpec::CElegansLike => 300_000,
            DatasetSpec::HSapiensLike => 400_000,
            DatasetSpec::Small => 60_000,
            DatasetSpec::Tiny => 4_000,
        }
    }

    /// Generate the dataset at a specific genome length.
    pub fn generate_with_length(&self, genome_length: usize, seed: u64) -> SimulatedDataset {
        let mean_len = self.mean_read_length().min(genome_length / 4).max(200);
        let genome_config = GenomeConfig {
            length: genome_length,
            repeat_fraction: 0.05,
            repeat_length: (mean_len / 4).max(100),
            seed,
        };
        let genome = generate_genome(&genome_config);
        let config = ReadSimConfig {
            depth: self.depth(),
            mean_read_length: mean_len,
            min_read_length: (mean_len / 4).max(100),
            read_length_sd: mean_len / 4,
            error_rate: self.error_rate(),
            seed: seed.wrapping_add(1),
        };
        let (reads, origins) = simulate_reads(&genome, &config);
        SimulatedDataset {
            label: self.label().to_string(),
            genome,
            reads,
            origins,
            config,
        }
    }

    /// Generate the dataset at its default scaled size.
    pub fn generate(&self, seed: u64) -> SimulatedDataset {
        self.generate_with_length(self.default_genome_length(), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genome_has_requested_length_and_is_deterministic() {
        let cfg = GenomeConfig { length: 5000, ..Default::default() };
        let g1 = generate_genome(&cfg);
        let g2 = generate_genome(&cfg);
        assert_eq!(g1.len(), 5000);
        assert_eq!(g1, g2);
        let g3 = generate_genome(&GenomeConfig { seed: 99, ..cfg });
        assert_ne!(g1, g3);
    }

    #[test]
    fn genome_repeats_produce_duplicate_segments() {
        let cfg = GenomeConfig {
            length: 20_000,
            repeat_fraction: 0.2,
            repeat_length: 400,
            seed: 3,
        };
        let g = generate_genome(&cfg);
        // Find at least two identical 100-base windows (sub-windows of the
        // pasted repeat template); a repeat-free random genome of this size has
        // a negligible chance of containing one.
        let ascii = g.to_ascii();
        let bytes = ascii.as_bytes();
        let mut seen = std::collections::HashSet::new();
        let mut found_dup = false;
        for start in 0..=bytes.len() - 100 {
            if !seen.insert(&bytes[start..start + 100]) {
                found_dup = true;
                break;
            }
        }
        assert!(found_dup, "expected repeated segments in a 20% repeat genome");
    }

    #[test]
    fn simulated_depth_is_close_to_target() {
        let genome = generate_genome(&GenomeConfig { length: 50_000, ..Default::default() });
        let config = ReadSimConfig {
            depth: 15.0,
            mean_read_length: 2_000,
            min_read_length: 500,
            read_length_sd: 400,
            error_rate: 0.0,
            seed: 5,
        };
        let (reads, origins) = simulate_reads(&genome, &config);
        assert_eq!(reads.len(), origins.len());
        let depth = reads.total_bases() as f64 / genome.len() as f64;
        assert!(
            (depth - 15.0).abs() < 2.0,
            "achieved depth {depth} too far from target 15"
        );
    }

    #[test]
    fn error_free_reads_match_the_reference() {
        let genome = generate_genome(&GenomeConfig { length: 20_000, ..Default::default() });
        let config = ReadSimConfig {
            depth: 3.0,
            mean_read_length: 1_000,
            min_read_length: 300,
            read_length_sd: 200,
            error_rate: 0.0,
            seed: 11,
        };
        let (reads, origins) = simulate_reads(&genome, &config);
        for (i, origin) in origins.iter().enumerate() {
            let expected = genome.slice(origin.start, origin.end()).oriented(origin.strand);
            assert_eq!(reads.seq(i), &expected, "read {i} does not match its origin");
        }
    }

    #[test]
    fn errors_change_the_sequence_but_keep_length_similar() {
        let genome = generate_genome(&GenomeConfig { length: 30_000, ..Default::default() });
        let mut rng = SmallRng::seed_from_u64(2);
        let template = genome.slice(0, 5_000);
        let erroneous = apply_errors(&template, 0.15, &mut rng);
        assert_ne!(erroneous, template);
        let ratio = erroneous.len() as f64 / template.len() as f64;
        // Insertions slightly outnumber deletions, so expect length within 10%.
        assert!(ratio > 0.9 && ratio < 1.15, "length ratio {ratio} out of range");
    }

    #[test]
    fn zero_error_rate_is_identity() {
        let mut rng = SmallRng::seed_from_u64(4);
        let template: DnaSeq = "ACGTACGTACGT".parse().unwrap();
        assert_eq!(apply_errors(&template, 0.0, &mut rng), template);
    }

    #[test]
    fn read_origin_overlap_and_containment() {
        let a = ReadOrigin { start: 100, span: 500, strand: Strand::Forward };
        let b = ReadOrigin { start: 400, span: 500, strand: Strand::Reverse };
        let c = ReadOrigin { start: 150, span: 100, strand: Strand::Forward };
        assert_eq!(a.overlap_with(&b), 200);
        assert_eq!(b.overlap_with(&a), 200);
        assert_eq!(a.overlap_with(&c), 100);
        assert!(a.contains(&c));
        assert!(!c.contains(&a));
        let far = ReadOrigin { start: 10_000, span: 100, strand: Strand::Forward };
        assert_eq!(a.overlap_with(&far), 0);
    }

    #[test]
    fn dataset_presets_match_paper_statistics() {
        assert_eq!(DatasetSpec::CElegansLike.depth(), 40.0);
        assert_eq!(DatasetSpec::HSapiensLike.depth(), 10.0);
        assert_eq!(DatasetSpec::CElegansLike.mean_read_length(), 11_241);
        assert_eq!(DatasetSpec::HSapiensLike.mean_read_length(), 7_401);
        assert!((DatasetSpec::HSapiensLike.error_rate() - 0.15).abs() < 1e-9);
        assert_eq!(DatasetSpec::EColiLike.depth(), 30.0);
    }

    #[test]
    fn tiny_dataset_generates_quickly_and_consistently() {
        let ds = DatasetSpec::Tiny.generate(42);
        assert!(ds.num_reads() > 10, "tiny dataset should still have a few dozen reads");
        assert!((ds.achieved_depth() - 12.0).abs() < 4.0);
        let ds2 = DatasetSpec::Tiny.generate(42);
        assert_eq!(ds.reads, ds2.reads, "same seed must give the same dataset");
        let ds3 = DatasetSpec::Tiny.generate(43);
        assert_ne!(ds.reads, ds3.reads);
    }
}

//! Synthetic genomes, PacBio-CLR-like long reads, and adversarial scenarios.
//!
//! The paper evaluates on real PacBio CLR datasets (Table IV: C. elegans at
//! 40× depth, ~11.2 kb mean read length, 13% error; H. sapiens at 10×,
//! ~7.4 kb, 15% error) which are tens of gigabytes and not redistributable
//! here.  This module provides the substitution documented in DESIGN.md: a
//! genome generator (with controllable repeat content) and a long-read
//! simulator that reproduces the statistics the pipeline's behaviour depends
//! on — depth of coverage `d`, read-length distribution `l`, error rate, and
//! strand symmetry — so the k-mer spectrum, overlap density (`c`, `r` in
//! Table III) and transitive-reduction workload are realistic at reduced scale.
//!
//! Beyond the paper's (well-behaved) datasets, the module also builds the
//! **adversarial scenario suite** (see DESIGN.md "Adversarial scenario
//! suite"): genomes that break assemblers — tandem and interspersed repeats
//! longer than the mean read length, two-strain metagenome mixes with tunable
//! divergence, circular genomes with wrap-around read sampling — and read
//! models that break pipelines — chimeric reads (ground-truth labelled) and
//! skewed length distributions (log-normal, empirical mixture).  Every
//! scenario keeps full ground truth ([`ReadOrigin`], chimera labels,
//! [`Topology`]) so `dibella_strgraph::metrics` can score the assembly
//! honestly, misjoins included.

use crate::dna::{DnaSeq, Strand};
use crate::fasta::{ReadRecord, ReadSet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic genome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenomeConfig {
    /// Genome length in bases.
    pub length: usize,
    /// Fraction of the genome covered by pasted copies of a repeated segment
    /// (0.0 = repeat-free).  Repeats are what make transitive reduction and
    /// string graphs interesting, so the presets keep a modest amount.
    pub repeat_fraction: f64,
    /// Length of each repeated segment.
    pub repeat_length: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenomeConfig {
    fn default() -> Self {
        Self { length: 100_000, repeat_fraction: 0.05, repeat_length: 500, seed: 7 }
    }
}

/// What [`generate_genome_report`] actually achieved for the requested repeat
/// content.  Copies are placed non-overlapping (with each other and with the
/// template segment), so a crowded genome can fall short of the request; the
/// report makes the shortfall visible instead of silent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepeatReport {
    /// The repeat fraction the caller asked for.
    pub requested_fraction: f64,
    /// Fraction of the genome actually covered by pasted repeat copies
    /// (the template's original occurrence is not counted).
    pub achieved_fraction: f64,
    /// Number of repeat copies pasted.
    pub copies_placed: usize,
    /// Start of the template segment the copies were taken from.
    pub template_start: usize,
}

/// Generate a random genome with the requested repeat content.
pub fn generate_genome(config: &GenomeConfig) -> DnaSeq {
    generate_genome_report(config).0
}

/// Generate a random genome and report the achieved repeat content.
///
/// Repeat copies are pasted at **non-overlapping** positions: a copy never
/// overwrites the template segment or another copy (earlier versions pasted
/// at uniform random positions, so copies could clobber each other and
/// silently undershoot `repeat_fraction`).  If the genome is too crowded to
/// place every requested copy, placement stops and the report's
/// `achieved_fraction` records what was actually laid down.
pub fn generate_genome_report(config: &GenomeConfig) -> (DnaSeq, RepeatReport) {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut codes: Vec<u8> = (0..config.length).map(|_| rng.gen_range(0..4u8)).collect();

    let mut placed = 0usize;
    let mut template_start = 0usize;
    if config.repeat_fraction > 0.0
        && config.repeat_length > 0
        && config.length > config.repeat_length * 2
    {
        let copies = ((config.length as f64 * config.repeat_fraction)
            / config.repeat_length as f64)
            .round() as usize;
        if copies >= 2 {
            // Pick one template segment; paste copies at rejection-sampled
            // non-overlapping positions.
            template_start = rng.gen_range(0..config.length - config.repeat_length);
            let template: Vec<u8> =
                codes[template_start..template_start + config.repeat_length].to_vec();
            let mut occupied: Vec<(usize, usize)> =
                vec![(template_start, template_start + config.repeat_length)];
            'copies: for _ in 0..copies {
                for _attempt in 0..64 {
                    let dst = rng.gen_range(0..config.length - config.repeat_length);
                    let end = dst + config.repeat_length;
                    if occupied.iter().all(|&(s, e)| end <= s || dst >= e) {
                        codes[dst..end].copy_from_slice(&template);
                        occupied.push((dst, end));
                        placed += 1;
                        continue 'copies;
                    }
                }
                // Genome too crowded for more non-overlapping copies.
                break;
            }
        }
    }
    let report = RepeatReport {
        requested_fraction: config.repeat_fraction,
        achieved_fraction: (placed * config.repeat_length) as f64 / config.length.max(1) as f64,
        copies_placed: placed,
        template_start,
    };
    (DnaSeq::from_codes(codes), report)
}

/// A tandem-repeat trap genome: `copies` consecutive identical copies of a
/// `unit_length`-base unit embedded mid-genome, flanked by unique sequence.
///
/// With `unit_length` larger than the mean read length no single read spans a
/// full unit, so an overlapper sees reads from different units as mutually
/// overlapping — the classic misassembly (collapse/misjoin) trap.
pub fn generate_tandem_repeat_genome(
    length: usize,
    unit_length: usize,
    copies: usize,
    seed: u64,
) -> DnaSeq {
    assert!(copies >= 2, "a tandem array needs at least two copies");
    assert!(
        unit_length * copies < length,
        "tandem array ({} x {}) does not fit in a {} bp genome",
        copies,
        unit_length,
        length
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut codes: Vec<u8> = (0..length).map(|_| rng.gen_range(0..4u8)).collect();
    let array_start = (length - unit_length * copies) / 2;
    let unit: Vec<u8> = codes[array_start..array_start + unit_length].to_vec();
    for i in 1..copies {
        let dst = array_start + i * unit_length;
        codes[dst..dst + unit_length].copy_from_slice(&unit);
    }
    DnaSeq::from_codes(codes)
}

/// Positions of the repeat copies laid down by
/// [`generate_interspersed_repeat_genome`]: evenly strided so copies never
/// overlap and flanks stay unique.  Exposed so tests can build fixtures that
/// know exactly where each copy lives (e.g. the misjoin negative control).
pub fn interspersed_repeat_positions(
    length: usize,
    repeat_length: usize,
    copies: usize,
) -> Vec<usize> {
    assert!(copies >= 2, "interspersed repeats need at least two copies");
    let stride = length / copies;
    assert!(
        repeat_length < stride,
        "repeat length {} leaves no unique sequence at stride {}",
        repeat_length,
        stride
    );
    (0..copies).map(|i| i * stride + (stride - repeat_length) / 2).collect()
}

/// An interspersed-repeat trap genome: `copies` identical copies of one
/// `repeat_length`-base segment at well-separated positions
/// ([`interspersed_repeat_positions`]), unique sequence everywhere else.
///
/// With `repeat_length` larger than the mean read length, reads interior to
/// different copies are indistinguishable, inviting the assembler to join
/// loci that are megabases apart — exactly what the misjoin metric must catch.
pub fn generate_interspersed_repeat_genome(
    length: usize,
    repeat_length: usize,
    copies: usize,
    seed: u64,
) -> DnaSeq {
    let positions = interspersed_repeat_positions(length, repeat_length, copies);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut codes: Vec<u8> = (0..length).map(|_| rng.gen_range(0..4u8)).collect();
    let template: Vec<u8> = codes[positions[0]..positions[0] + repeat_length].to_vec();
    for &pos in &positions[1..] {
        codes[pos..pos + repeat_length].copy_from_slice(&template);
    }
    DnaSeq::from_codes(codes)
}

/// A two-strain metagenome reference: strain A (random, `strain_length`
/// bases) concatenated with strain B, a copy of A whose bases are substituted
/// independently with probability `divergence`.  Substitution-only mutation
/// keeps the two strains' coordinates aligned, so `A`-reads occupy
/// `[0, strain_length)` and `B`-reads `[strain_length, 2·strain_length)` in
/// the shared reference frame.
///
/// Low divergence is the trap: reads from homologous loci of the two strains
/// align well enough to overlap, but their true intervals are disjoint, so a
/// strain-collapsing assembler produces misjoins and depressed identity.
pub fn generate_diverged_pair(strain_length: usize, divergence: f64, seed: u64) -> DnaSeq {
    assert!((0.0..=1.0).contains(&divergence), "divergence must be a probability");
    let mut rng = SmallRng::seed_from_u64(seed);
    let a: Vec<u8> = (0..strain_length).map(|_| rng.gen_range(0..4u8)).collect();
    let mut codes = a.clone();
    codes.extend(a.iter().map(|&c| {
        if divergence > 0.0 && rng.gen_bool(divergence) {
            (c + rng.gen_range(1..4u8)) % 4
        } else {
            c
        }
    }));
    DnaSeq::from_codes(codes)
}

/// Topology of the reference replicon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Topology {
    /// A linear chromosome: coordinates are plain intervals.
    #[default]
    Linear,
    /// A circular replicon (plasmid, bacterial chromosome): positions are
    /// modulo the genome length and reads may wrap around the origin.
    Circular,
}

/// Slice `span` bases starting at `start`, wrapping around the end of the
/// sequence — the read-sampling primitive for [`Topology::Circular`] genomes
/// and the region extractor for origin-crossing contigs.
pub fn circular_slice(genome: &DnaSeq, start: usize, span: usize) -> DnaSeq {
    let len = genome.len();
    assert!(len > 0, "cannot slice an empty genome circularly");
    let mut codes = Vec::with_capacity(span);
    let mut pos = start % len;
    let mut remaining = span;
    while remaining > 0 {
        let take = remaining.min(len - pos);
        codes.extend_from_slice(&genome.codes()[pos..pos + take]);
        pos = (pos + take) % len;
        remaining -= take;
    }
    DnaSeq::from_codes(codes)
}

/// Read-length distribution family used by the simulator.
///
/// Real long-read runs are not Gaussian: CLR/ONT length histograms are
/// right-skewed with a short-fragment shoulder and a long tail.  The mean and
/// standard deviation of [`ReadSimConfig`] parameterise every family, so
/// swapping the model stresses the pipeline's length assumptions without
/// changing the target depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum LengthModel {
    /// Clamped normal distribution (the original model).
    #[default]
    Gaussian,
    /// Log-normal with matching mean and standard deviation — right-skewed,
    /// median below the mean, like a clean single-mode long-read run.
    LogNormal,
    /// A three-mode empirical mixture mimicking real runs: a short-fragment
    /// shoulder (15% of reads at mean/4), the dominant mode (75% at the
    /// mean), and a long tail (10% at 2.5× the mean), each log-normal.
    EmpiricalMixture,
}

/// Parameters of the long-read simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadSimConfig {
    /// Target depth of coverage `d` (mean number of reads covering a base).
    pub depth: f64,
    /// Mean read length `l` in bases.
    pub mean_read_length: usize,
    /// Minimum read length (reads shorter than this are discarded).
    pub min_read_length: usize,
    /// Standard deviation of the read length distribution.
    pub read_length_sd: usize,
    /// Per-base error probability (substitutions + indels combined).
    pub error_rate: f64,
    /// RNG seed.
    pub seed: u64,
    /// Which read-length distribution family to draw from.
    pub length_model: LengthModel,
    /// Probability that a read is a chimera: two segments from unrelated loci
    /// joined end to end (a library-prep artefact).  Chimeric reads are
    /// ground-truth labelled so evaluation can tell "assembler misjoin" from
    /// "chimera propagated".
    pub chimera_rate: f64,
}

impl Default for ReadSimConfig {
    fn default() -> Self {
        Self {
            depth: 20.0,
            mean_read_length: 8_000,
            min_read_length: 1_000,
            read_length_sd: 2_000,
            error_rate: 0.14,
            seed: 13,
            length_model: LengthModel::Gaussian,
            chimera_rate: 0.0,
        }
    }
}

/// Where a simulated read came from on the reference genome (ground truth for
/// validating overlaps and string graphs).
///
/// On a [`Topology::Circular`] genome, `start` is always reduced modulo the
/// genome length and `start + span` may exceed it: the read wraps around the
/// origin.  The `*_in` methods interpret coordinates under a given topology;
/// the plain [`ReadOrigin::overlap_with`]/[`ReadOrigin::contains`] are the
/// linear specialisations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadOrigin {
    /// Start position on the forward strand of the genome.
    pub start: usize,
    /// Number of genome bases covered by the read (before errors).  For a
    /// chimeric read this covers only the leading segment — the rest of the
    /// read is unmapped by construction.
    pub span: usize,
    /// Which strand the read was sampled from.
    pub strand: Strand,
}

impl ReadOrigin {
    /// End position (exclusive) on the forward strand.  May exceed the genome
    /// length for wrap-around reads on circular genomes.
    pub fn end(&self) -> usize {
        self.start + self.span
    }

    /// Length of overlap between the genomic intervals of two reads
    /// (linear-topology interpretation).
    pub fn overlap_with(&self, other: &ReadOrigin) -> usize {
        let start = self.start.max(other.start);
        let end = self.end().min(other.end());
        end.saturating_sub(start)
    }

    /// Whether this read's interval fully contains the other's
    /// (linear-topology interpretation).
    pub fn contains(&self, other: &ReadOrigin) -> bool {
        self.start <= other.start && other.end() <= self.end()
    }

    /// Length of overlap between two reads' genomic footprints under the
    /// given topology.  On a circular genome both arcs may wrap the origin;
    /// the overlap is the length of the arc intersection.
    pub fn overlap_with_in(&self, other: &ReadOrigin, topology: Topology, genome_len: usize) -> usize {
        match topology {
            Topology::Linear => self.overlap_with(other),
            Topology::Circular => {
                if genome_len == 0 {
                    return 0;
                }
                let s = self.span.min(genome_len);
                let t = other.span.min(genome_len);
                // Rotate so self covers [0, s); other covers [o, o+t) (mod len).
                let o = (other.start % genome_len + genome_len - self.start % genome_len)
                    % genome_len;
                let direct = (o + t).min(genome_len).min(s).saturating_sub(o);
                let wrapped = (o + t).saturating_sub(genome_len).min(s);
                direct + wrapped
            }
        }
    }

    /// Whether this read's genomic footprint fully contains the other's under
    /// the given topology.
    pub fn contains_in(&self, other: &ReadOrigin, topology: Topology, genome_len: usize) -> bool {
        match topology {
            Topology::Linear => self.contains(other),
            Topology::Circular => {
                if genome_len == 0 {
                    return false;
                }
                let s = self.span.min(genome_len);
                if s == genome_len {
                    return true;
                }
                let t = other.span.min(genome_len);
                let o = (other.start % genome_len + genome_len - self.start % genome_len)
                    % genome_len;
                o + t <= s
            }
        }
    }
}

/// A complete simulated dataset: the reference, the reads, their origins and
/// the configuration that produced them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimulatedDataset {
    /// Human-readable dataset label (e.g. "C. elegans (scaled)").
    pub label: String,
    /// The reference genome the reads were sampled from.
    pub genome: DnaSeq,
    /// The simulated reads.
    pub reads: ReadSet,
    /// Ground-truth origin of every read (same indexing as `reads`).
    pub origins: Vec<ReadOrigin>,
    /// Ground-truth chimera label per read (same indexing as `reads`).
    pub chimeric: Vec<bool>,
    /// Topology of the reference replicon.
    pub topology: Topology,
    /// The read-simulation parameters used.
    pub config: ReadSimConfig,
}

impl SimulatedDataset {
    /// Achieved depth of coverage (total read bases / genome length).
    pub fn achieved_depth(&self) -> f64 {
        self.reads.total_bases() as f64 / self.genome.len() as f64
    }

    /// Number of reads.
    pub fn num_reads(&self) -> usize {
        self.reads.len()
    }

    /// Number of ground-truth chimeric reads.
    pub fn num_chimeric(&self) -> usize {
        self.chimeric.iter().filter(|&&c| c).count()
    }

    /// Mean read length.
    pub fn mean_read_length(&self) -> f64 {
        self.reads.mean_read_length()
    }

    /// Ground-truth overlap length (in genome bases) between two reads, or 0.
    /// Respects the dataset's [`Topology`], so wrap-around reads on circular
    /// genomes overlap across the origin.
    pub fn true_overlap(&self, i: usize, j: usize) -> usize {
        self.origins[i].overlap_with_in(&self.origins[j], self.topology, self.genome.len())
    }

    /// Input size in megabytes of FASTA text (roughly; one byte per base).
    pub fn input_size_mb(&self) -> f64 {
        self.reads.total_bases() as f64 / 1.0e6
    }
}

/// Sample reads from `genome` according to `config` (linear topology).
///
/// Chimera labels are discarded; use [`simulate_reads_with`] when
/// `config.chimera_rate > 0` or the genome is circular.
pub fn simulate_reads(genome: &DnaSeq, config: &ReadSimConfig) -> (ReadSet, Vec<ReadOrigin>) {
    let (reads, origins, _chimeric) = simulate_reads_with(genome, config, Topology::Linear);
    (reads, origins)
}

/// Sample reads from `genome` under the given topology, returning the reads,
/// their ground-truth origins, and a per-read chimera label.
///
/// On [`Topology::Circular`] genomes, reads may start anywhere and wrap
/// around the origin (their origin `end()` exceeds the genome length).  With
/// `config.chimera_rate > 0`, a read is (with that probability) the join of
/// two segments from unrelated loci; its origin covers only the leading
/// segment and its label is `true`.
pub fn simulate_reads_with(
    genome: &DnaSeq,
    config: &ReadSimConfig,
    topology: Topology,
) -> (ReadSet, Vec<ReadOrigin>, Vec<bool>) {
    assert!(genome.len() > config.min_read_length, "genome shorter than the minimum read length");
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let target_bases = (genome.len() as f64 * config.depth) as usize;
    let mut reads = ReadSet::new();
    let mut origins = Vec::new();
    let mut chimeric_flags = Vec::new();
    let mut sampled_bases = 0usize;
    let mut read_id = 0usize;

    while sampled_bases < target_bases {
        let len = sample_length(&mut rng, config, genome.len());
        let start = sample_start(&mut rng, genome.len(), len, topology);
        let strand = if rng.gen_bool(0.5) { Strand::Forward } else { Strand::Reverse };
        let chimeric = config.chimera_rate > 0.0 && rng.gen_bool(config.chimera_rate);
        let (template, origin) = if chimeric {
            // Join a leading segment with a segment from an unrelated locus.
            let split = rng.gen_range(len / 4..=len * 3 / 4).max(1).min(len - 1);
            let lead = extract(genome, start, split, topology).oriented(strand);
            let tail_start = sample_start(&mut rng, genome.len(), len - split, topology);
            let tail_strand = if rng.gen_bool(0.5) { Strand::Forward } else { Strand::Reverse };
            let tail = extract(genome, tail_start, len - split, topology).oriented(tail_strand);
            (lead.concat(&tail), ReadOrigin { start, span: split, strand })
        } else {
            (
                extract(genome, start, len, topology).oriented(strand),
                ReadOrigin { start, span: len, strand },
            )
        };
        let seq = apply_errors(&template, config.error_rate, &mut rng);
        sampled_bases += len;
        reads.push(ReadRecord { name: format!("read{read_id:06}"), seq });
        origins.push(origin);
        chimeric_flags.push(chimeric);
        read_id += 1;
    }
    (reads, origins, chimeric_flags)
}

/// Draw a read start position valid for the topology.
fn sample_start(rng: &mut SmallRng, genome_len: usize, len: usize, topology: Topology) -> usize {
    match topology {
        Topology::Linear => rng.gen_range(0..=genome_len - len),
        Topology::Circular => rng.gen_range(0..genome_len),
    }
}

/// Extract the genome bases a read covers (wrapping on circular genomes).
fn extract(genome: &DnaSeq, start: usize, span: usize, topology: Topology) -> DnaSeq {
    match topology {
        Topology::Linear => genome.slice(start, start + span),
        Topology::Circular => circular_slice(genome, start, span),
    }
}

fn sample_length(rng: &mut SmallRng, config: &ReadSimConfig, genome_len: usize) -> usize {
    let mean = config.mean_read_length as f64;
    let sd = config.read_length_sd as f64;
    let len = match config.length_model {
        LengthModel::Gaussian => mean + normal_sample(rng) * sd,
        LengthModel::LogNormal => lognormal_sample(rng, mean, sd),
        LengthModel::EmpiricalMixture => {
            // Short-fragment shoulder, dominant mode, long tail.
            let u: f64 = rng.gen();
            let (m, s) = if u < 0.15 {
                (mean / 4.0, sd / 4.0)
            } else if u < 0.90 {
                (mean, sd)
            } else {
                (mean * 2.5, sd)
            };
            lognormal_sample(rng, m, s)
        }
    };
    (len.round() as isize)
        .clamp(config.min_read_length as isize, genome_len as isize) as usize
}

/// One standard-normal sample via Box–Muller.
fn normal_sample(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A log-normal sample whose distribution has the given mean and standard
/// deviation (moment-matched: `sigma² = ln(1 + s²/m²)`, `mu = ln m - sigma²/2`).
fn lognormal_sample(rng: &mut SmallRng, mean: f64, sd: f64) -> f64 {
    let sigma2 = (1.0 + (sd * sd) / (mean * mean)).ln();
    let mu = mean.ln() - sigma2 / 2.0;
    (mu + sigma2.sqrt() * normal_sample(rng)).exp()
}

/// Apply a PacBio-CLR-like error model: at each template position an error
/// occurs with probability `error_rate`; errors are 40% substitutions, 40%
/// insertions and 20% deletions (CLR error profiles are indel-dominated).
pub fn apply_errors(template: &DnaSeq, error_rate: f64, rng: &mut SmallRng) -> DnaSeq {
    if error_rate <= 0.0 {
        return template.clone();
    }
    let mut out = DnaSeq::new();
    for i in 0..template.len() {
        let base = template.code(i);
        if rng.gen_bool(error_rate) {
            let kind: f64 = rng.gen();
            if kind < 0.4 {
                // Substitution with a different base.
                let sub = (base + rng.gen_range(1..4u8)) % 4;
                out.push_code(sub);
            } else if kind < 0.8 {
                // Insertion: emit a random base, then the true base.
                out.push_code(rng.gen_range(0..4u8));
                out.push_code(base);
            } else {
                // Deletion: skip the true base.
            }
        } else {
            out.push_code(base);
        }
    }
    out
}

/// The adversarial assembly scenarios (see DESIGN.md "Adversarial scenario
/// suite").  Each kind names a genome/read-model combination designed to
/// defeat a specific assumption the happy-path pipeline gets away with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// Unique-sequence genome, narrow Gaussian reads — the solved game every
    /// other scenario is compared against.
    Baseline,
    /// Tandem array of identical units longer than the mean read length.
    TandemRepeat,
    /// Identical repeat copies at well-separated loci, each longer than the
    /// mean read length.
    InterspersedRepeat,
    /// Baseline genome read with chimeric (split) reads and a log-normal
    /// length distribution.
    ChimericReads,
    /// Two-strain metagenome mix with tunable divergence and an
    /// empirical-mixture length distribution.
    MetagenomeMix,
    /// Circular genome with wrap-around read sampling.
    CircularGenome,
}

impl ScenarioKind {
    /// All scenarios, in matrix order.
    pub const ALL: [ScenarioKind; 6] = [
        ScenarioKind::Baseline,
        ScenarioKind::TandemRepeat,
        ScenarioKind::InterspersedRepeat,
        ScenarioKind::ChimericReads,
        ScenarioKind::MetagenomeMix,
        ScenarioKind::CircularGenome,
    ];

    /// Stable machine-readable label (used in the scenario matrix JSON).
    pub fn label(&self) -> &'static str {
        match self {
            ScenarioKind::Baseline => "baseline",
            ScenarioKind::TandemRepeat => "tandem-repeat",
            ScenarioKind::InterspersedRepeat => "interspersed-repeat",
            ScenarioKind::ChimericReads => "chimeric-reads",
            ScenarioKind::MetagenomeMix => "metagenome-mix",
            ScenarioKind::CircularGenome => "circular-genome",
        }
    }
}

/// Tunable knobs of the scenario builder.  `Default` gives the bench-scale
/// preset; tests shrink `genome_length`/`mean_read_length` for speed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioParams {
    /// Genome length in bases (per strain for [`ScenarioKind::MetagenomeMix`],
    /// whose reference is twice this long).
    pub genome_length: usize,
    /// Target depth of coverage (per strain for the metagenome mix).
    pub depth: f64,
    /// Mean read length; repeat traps size their repeat unit at twice this so
    /// no single read spans a repeat copy.
    pub mean_read_length: usize,
    /// Per-base sequencing error rate.
    pub error_rate: f64,
    /// RNG seed (genome and reads derive distinct streams from it).
    pub seed: u64,
    /// Number of repeat copies in the tandem/interspersed traps.
    pub repeat_copies: usize,
    /// Per-base divergence between the two metagenome strains.
    pub divergence: f64,
    /// Chimera probability for [`ScenarioKind::ChimericReads`].
    pub chimera_rate: f64,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        Self {
            genome_length: 15_000,
            depth: 15.0,
            mean_read_length: 1_200,
            error_rate: 0.05,
            seed: 77,
            repeat_copies: 3,
            divergence: 0.03,
            chimera_rate: 0.08,
        }
    }
}

/// Build the simulated dataset for one adversarial scenario.
pub fn build_scenario(kind: ScenarioKind, p: &ScenarioParams) -> SimulatedDataset {
    let mean = p.mean_read_length;
    let base_read = ReadSimConfig {
        depth: p.depth,
        mean_read_length: mean,
        min_read_length: (mean * 3 / 4).max(100),
        read_length_sd: (mean / 12).max(20),
        error_rate: p.error_rate,
        seed: p.seed.wrapping_add(1),
        length_model: LengthModel::Gaussian,
        chimera_rate: 0.0,
    };
    let unique_genome = |seed: u64| {
        generate_genome(&GenomeConfig {
            length: p.genome_length,
            repeat_fraction: 0.02,
            repeat_length: (mean / 4).max(100),
            seed,
        })
    };
    match kind {
        ScenarioKind::Baseline => {
            finish(kind, unique_genome(p.seed), base_read, Topology::Linear)
        }
        ScenarioKind::TandemRepeat => {
            let genome =
                generate_tandem_repeat_genome(p.genome_length, 2 * mean, p.repeat_copies, p.seed);
            finish(kind, genome, base_read, Topology::Linear)
        }
        ScenarioKind::InterspersedRepeat => {
            let genome = generate_interspersed_repeat_genome(
                p.genome_length,
                2 * mean,
                p.repeat_copies,
                p.seed,
            );
            finish(kind, genome, base_read, Topology::Linear)
        }
        ScenarioKind::ChimericReads => {
            let config = ReadSimConfig {
                length_model: LengthModel::LogNormal,
                chimera_rate: p.chimera_rate,
                ..base_read
            };
            finish(kind, unique_genome(p.seed), config, Topology::Linear)
        }
        ScenarioKind::MetagenomeMix => {
            let genome = generate_diverged_pair(p.genome_length, p.divergence, p.seed);
            let strain_len = p.genome_length;
            let config = ReadSimConfig {
                length_model: LengthModel::EmpiricalMixture,
                min_read_length: (mean / 3).max(100),
                ..base_read
            };
            let strain_a = genome.slice(0, strain_len);
            let strain_b = genome.slice(strain_len, 2 * strain_len);
            let (reads_a, origins_a, chim_a) =
                simulate_reads_with(&strain_a, &config, Topology::Linear);
            let config_b = ReadSimConfig { seed: config.seed.wrapping_add(1), ..config };
            let (reads_b, origins_b, chim_b) =
                simulate_reads_with(&strain_b, &config_b, Topology::Linear);
            // Merge: strain-B origins shift into the concatenated frame, and
            // reads are renumbered so names stay unique.
            let mut reads = ReadSet::new();
            let mut origins = Vec::new();
            let mut chimeric = Vec::new();
            for (set, origin_set, chim, offset) in [
                (&reads_a, &origins_a, &chim_a, 0usize),
                (&reads_b, &origins_b, &chim_b, strain_len),
            ] {
                for (i, rec) in set.iter() {
                    let id = reads.len();
                    reads.push(ReadRecord { name: format!("read{id:06}"), seq: rec.seq.clone() });
                    origins.push(ReadOrigin { start: origin_set[i].start + offset, ..origin_set[i] });
                    chimeric.push(chim[i]);
                }
            }
            SimulatedDataset {
                label: kind.label().to_string(),
                genome,
                reads,
                origins,
                chimeric,
                topology: Topology::Linear,
                config,
            }
        }
        ScenarioKind::CircularGenome => {
            finish(kind, unique_genome(p.seed), base_read, Topology::Circular)
        }
    }
}

fn finish(
    kind: ScenarioKind,
    genome: DnaSeq,
    config: ReadSimConfig,
    topology: Topology,
) -> SimulatedDataset {
    let (reads, origins, chimeric) = simulate_reads_with(&genome, &config, topology);
    SimulatedDataset {
        label: kind.label().to_string(),
        genome,
        reads,
        origins,
        chimeric,
        topology,
        config,
    }
}

/// Named dataset presets mirroring Table IV of the paper, scaled down so they
/// run on one machine.  The `scale` argument multiplies the genome size; the
/// depth, read length and error rate match the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetSpec {
    /// E. coli–like: 30× depth, ~9 kb reads, 13% error (Table III row 1).
    EColiLike,
    /// C. elegans–like: 40× depth, ~11.2 kb reads, 13% error (Table IV row 1).
    CElegansLike,
    /// H. sapiens–like: 10× depth, ~7.4 kb reads, 15% error (Table IV row 2).
    HSapiensLike,
    /// A small benchmark dataset: big enough that kernel differences are
    /// measurable, small enough for CI smoke benches (used by the spgemm
    /// bench that produces `BENCH_spgemm.json`).
    Small,
    /// A tiny smoke-test dataset for unit and integration tests.
    Tiny,
}

impl DatasetSpec {
    /// Human-readable label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            DatasetSpec::EColiLike => "E. coli (scaled)",
            DatasetSpec::CElegansLike => "C. elegans (scaled)",
            DatasetSpec::HSapiensLike => "H. sapiens (scaled)",
            DatasetSpec::Small => "small (bench)",
            DatasetSpec::Tiny => "tiny",
        }
    }

    /// Paper values: depth of coverage.
    pub fn depth(&self) -> f64 {
        match self {
            DatasetSpec::EColiLike => 30.0,
            DatasetSpec::CElegansLike => 40.0,
            DatasetSpec::HSapiensLike => 10.0,
            DatasetSpec::Small => 25.0,
            DatasetSpec::Tiny => 12.0,
        }
    }

    /// Paper values: mean read length (bases).
    pub fn mean_read_length(&self) -> usize {
        match self {
            DatasetSpec::EColiLike => 9_000,
            DatasetSpec::CElegansLike => 11_241,
            DatasetSpec::HSapiensLike => 7_401,
            DatasetSpec::Small => 1_000,
            DatasetSpec::Tiny => 600,
        }
    }

    /// Paper values: per-base error rate.
    pub fn error_rate(&self) -> f64 {
        match self {
            DatasetSpec::EColiLike => 0.13,
            DatasetSpec::CElegansLike => 0.13,
            DatasetSpec::HSapiensLike => 0.15,
            DatasetSpec::Small => 0.10,
            DatasetSpec::Tiny => 0.05,
        }
    }

    /// Genome size of the *real* organism in megabases (for documentation).
    pub fn real_genome_size_mb(&self) -> f64 {
        match self {
            DatasetSpec::EColiLike => 4.6,
            DatasetSpec::CElegansLike => 100.0,
            DatasetSpec::HSapiensLike => 3000.0,
            DatasetSpec::Small => 0.06,
            DatasetSpec::Tiny => 0.004,
        }
    }

    /// Default scaled genome length in bases used by the harnesses.
    pub fn default_genome_length(&self) -> usize {
        match self {
            DatasetSpec::EColiLike => 200_000,
            DatasetSpec::CElegansLike => 300_000,
            DatasetSpec::HSapiensLike => 400_000,
            DatasetSpec::Small => 60_000,
            DatasetSpec::Tiny => 4_000,
        }
    }

    /// Generate the dataset at a specific genome length.
    pub fn generate_with_length(&self, genome_length: usize, seed: u64) -> SimulatedDataset {
        let mean_len = self.mean_read_length().min(genome_length / 4).max(200);
        let genome_config = GenomeConfig {
            length: genome_length,
            repeat_fraction: 0.05,
            repeat_length: (mean_len / 4).max(100),
            seed,
        };
        let genome = generate_genome(&genome_config);
        let config = ReadSimConfig {
            depth: self.depth(),
            mean_read_length: mean_len,
            min_read_length: (mean_len / 4).max(100),
            read_length_sd: mean_len / 4,
            error_rate: self.error_rate(),
            seed: seed.wrapping_add(1),
            ..ReadSimConfig::default()
        };
        let (reads, origins, chimeric) = simulate_reads_with(&genome, &config, Topology::Linear);
        SimulatedDataset {
            label: self.label().to_string(),
            genome,
            reads,
            origins,
            chimeric,
            topology: Topology::Linear,
            config,
        }
    }

    /// Generate the dataset at its default scaled size.
    pub fn generate(&self, seed: u64) -> SimulatedDataset {
        self.generate_with_length(self.default_genome_length(), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genome_has_requested_length_and_is_deterministic() {
        let cfg = GenomeConfig { length: 5000, ..Default::default() };
        let g1 = generate_genome(&cfg);
        let g2 = generate_genome(&cfg);
        assert_eq!(g1.len(), 5000);
        assert_eq!(g1, g2);
        let g3 = generate_genome(&GenomeConfig { seed: 99, ..cfg });
        assert_ne!(g1, g3);
    }

    #[test]
    fn genome_repeats_produce_duplicate_segments() {
        let cfg = GenomeConfig {
            length: 20_000,
            repeat_fraction: 0.2,
            repeat_length: 400,
            seed: 3,
        };
        let g = generate_genome(&cfg);
        // Find at least two identical 100-base windows (sub-windows of the
        // pasted repeat template); a repeat-free random genome of this size has
        // a negligible chance of containing one.
        let ascii = g.to_ascii();
        let bytes = ascii.as_bytes();
        let mut seen = std::collections::HashSet::new();
        let mut found_dup = false;
        for start in 0..=bytes.len() - 100 {
            if !seen.insert(&bytes[start..start + 100]) {
                found_dup = true;
                break;
            }
        }
        assert!(found_dup, "expected repeated segments in a 20% repeat genome");
    }

    #[test]
    fn achieved_repeat_fraction_is_within_tolerance_of_the_request() {
        // Non-overlapping placement must actually deliver the requested
        // repeat content (the old uniform pasting could overwrite copies and
        // silently undershoot).
        for (frac, seed) in [(0.1, 1u64), (0.2, 2), (0.3, 3)] {
            let cfg = GenomeConfig {
                length: 50_000,
                repeat_fraction: frac,
                repeat_length: 500,
                seed,
            };
            let (genome, report) = generate_genome_report(&cfg);
            assert_eq!(genome.len(), 50_000);
            assert!(
                (report.achieved_fraction - frac).abs() <= 0.02,
                "requested {frac}, achieved {} ({} copies)",
                report.achieved_fraction,
                report.copies_placed
            );
            // And the copies really are intact duplicates of the template.
            let template = genome.slice(report.template_start, report.template_start + 500);
            let ascii = genome.to_ascii();
            let occurrences = ascii.matches(&template.to_ascii()).count();
            assert_eq!(
                occurrences,
                report.copies_placed + 1,
                "every placed copy must survive as an exact duplicate"
            );
        }
    }

    #[test]
    fn tandem_repeat_genome_contains_the_array() {
        let g = generate_tandem_repeat_genome(12_000, 2_000, 3, 9);
        assert_eq!(g.len(), 12_000);
        let array_start = (12_000 - 2_000 * 3) / 2;
        let unit = g.slice(array_start, array_start + 2_000);
        for i in 1..3 {
            let copy = g.slice(array_start + i * 2_000, array_start + (i + 1) * 2_000);
            assert_eq!(copy, unit, "tandem copy {i} must be identical to the unit");
        }
        // The flanks are unique sequence, not more copies.
        assert_ne!(g.slice(0, 2_000), unit);
    }

    #[test]
    fn interspersed_repeat_genome_places_identical_nonoverlapping_copies() {
        let positions = interspersed_repeat_positions(15_000, 2_400, 3);
        assert_eq!(positions.len(), 3);
        for pair in positions.windows(2) {
            assert!(pair[0] + 2_400 <= pair[1], "copies must not overlap: {positions:?}");
        }
        let g = generate_interspersed_repeat_genome(15_000, 2_400, 3, 4);
        let template = g.slice(positions[0], positions[0] + 2_400);
        for &pos in &positions[1..] {
            assert_eq!(g.slice(pos, pos + 2_400), template);
        }
    }

    #[test]
    fn diverged_pair_has_the_requested_divergence() {
        let strain_len = 20_000;
        let g = generate_diverged_pair(strain_len, 0.05, 12);
        assert_eq!(g.len(), 2 * strain_len);
        let diffs = (0..strain_len)
            .filter(|&i| g.code(i) != g.code(i + strain_len))
            .count();
        let rate = diffs as f64 / strain_len as f64;
        assert!((rate - 0.05).abs() < 0.01, "observed divergence {rate}");
        // Zero divergence is an exact copy.
        let same = generate_diverged_pair(1_000, 0.0, 12);
        assert_eq!(same.slice(0, 1_000), same.slice(1_000, 2_000));
    }

    #[test]
    fn circular_slice_wraps_around_the_origin() {
        let g: DnaSeq = "ACGTACGTAC".parse().unwrap();
        assert_eq!(circular_slice(&g, 0, 4).to_ascii(), "ACGT");
        assert_eq!(circular_slice(&g, 8, 4).to_ascii(), "ACAC");
        assert_eq!(circular_slice(&g, 10, 3).to_ascii(), "ACG");
        // Spans longer than the genome keep wrapping.
        assert_eq!(circular_slice(&g, 6, 12).to_ascii(), "GTACACGTACGT");
    }

    #[test]
    fn simulated_depth_is_close_to_target() {
        let genome = generate_genome(&GenomeConfig { length: 50_000, ..Default::default() });
        let config = ReadSimConfig {
            depth: 15.0,
            mean_read_length: 2_000,
            min_read_length: 500,
            read_length_sd: 400,
            error_rate: 0.0,
            seed: 5,
            ..ReadSimConfig::default()
        };
        let (reads, origins) = simulate_reads(&genome, &config);
        assert_eq!(reads.len(), origins.len());
        let depth = reads.total_bases() as f64 / genome.len() as f64;
        assert!(
            (depth - 15.0).abs() < 2.0,
            "achieved depth {depth} too far from target 15"
        );
    }

    #[test]
    fn error_free_reads_match_the_reference() {
        let genome = generate_genome(&GenomeConfig { length: 20_000, ..Default::default() });
        let config = ReadSimConfig {
            depth: 3.0,
            mean_read_length: 1_000,
            min_read_length: 300,
            read_length_sd: 200,
            error_rate: 0.0,
            seed: 11,
            ..ReadSimConfig::default()
        };
        let (reads, origins) = simulate_reads(&genome, &config);
        for (i, origin) in origins.iter().enumerate() {
            let expected = genome.slice(origin.start, origin.end()).oriented(origin.strand);
            assert_eq!(reads.seq(i), &expected, "read {i} does not match its origin");
        }
    }

    #[test]
    fn errors_change_the_sequence_but_keep_length_similar() {
        let genome = generate_genome(&GenomeConfig { length: 30_000, ..Default::default() });
        let mut rng = SmallRng::seed_from_u64(2);
        let template = genome.slice(0, 5_000);
        let erroneous = apply_errors(&template, 0.15, &mut rng);
        assert_ne!(erroneous, template);
        let ratio = erroneous.len() as f64 / template.len() as f64;
        // Insertions slightly outnumber deletions, so expect length within 10%.
        assert!(ratio > 0.9 && ratio < 1.15, "length ratio {ratio} out of range");
    }

    #[test]
    fn zero_error_rate_is_identity() {
        let mut rng = SmallRng::seed_from_u64(4);
        let template: DnaSeq = "ACGTACGTACGT".parse().unwrap();
        assert_eq!(apply_errors(&template, 0.0, &mut rng), template);
    }

    #[test]
    fn read_origin_overlap_and_containment() {
        let a = ReadOrigin { start: 100, span: 500, strand: Strand::Forward };
        let b = ReadOrigin { start: 400, span: 500, strand: Strand::Reverse };
        let c = ReadOrigin { start: 150, span: 100, strand: Strand::Forward };
        assert_eq!(a.overlap_with(&b), 200);
        assert_eq!(b.overlap_with(&a), 200);
        assert_eq!(a.overlap_with(&c), 100);
        assert!(a.contains(&c));
        assert!(!c.contains(&a));
        let far = ReadOrigin { start: 10_000, span: 100, strand: Strand::Forward };
        assert_eq!(a.overlap_with(&far), 0);
    }

    #[test]
    fn circular_overlap_crosses_the_origin_and_is_symmetric() {
        let len = 1_000;
        // a wraps: covers [900, 1000) + [0, 100); b covers [50, 250).
        let a = ReadOrigin { start: 900, span: 200, strand: Strand::Forward };
        let b = ReadOrigin { start: 50, span: 200, strand: Strand::Reverse };
        assert_eq!(a.overlap_with_in(&b, Topology::Circular, len), 50);
        assert_eq!(b.overlap_with_in(&a, Topology::Circular, len), 50);
        // Linear interpretation sees no overlap at all — the trap this fixes.
        assert_eq!(a.overlap_with(&b), 0);
        // Linear topology through the _in API matches the plain method.
        assert_eq!(a.overlap_with_in(&b, Topology::Linear, len), 0);
        // Containment across the origin: `inner` lies wholly past the wrap,
        // where the linear interpretation cannot place it inside `a`.
        let inner = ReadOrigin { start: 10, span: 50, strand: Strand::Forward };
        assert!(a.contains_in(&inner, Topology::Circular, len));
        assert!(!inner.contains_in(&a, Topology::Circular, len));
        assert!(!a.contains(&inner), "linear containment cannot see the wrap");
        // A straddling segment is contained too.
        let straddle = ReadOrigin { start: 950, span: 100, strand: Strand::Forward };
        assert!(a.contains_in(&straddle, Topology::Circular, len));
        // A full-circle read contains everything.
        let whole = ReadOrigin { start: 123, span: len, strand: Strand::Forward };
        assert!(whole.contains_in(&a, Topology::Circular, len));
        assert_eq!(whole.overlap_with_in(&a, Topology::Circular, len), 200);
    }

    #[test]
    fn true_overlap_is_symmetric_and_agrees_with_read_origin() {
        // Includes reverse-strand and contained reads: the overlap is a
        // property of the genomic interval, not the strand.
        let ds = DatasetSpec::Tiny.generate(77);
        assert!(ds.origins.iter().any(|o| o.strand == Strand::Reverse));
        let contained = ds
            .origins
            .iter()
            .enumerate()
            .any(|(i, a)| ds.origins.iter().enumerate().any(|(j, b)| i != j && a.contains(b)));
        assert!(contained, "expected at least one contained read in a 12x dataset");
        for i in 0..ds.num_reads() {
            for j in 0..ds.num_reads() {
                assert_eq!(ds.true_overlap(i, j), ds.true_overlap(j, i), "asymmetric at ({i},{j})");
                assert_eq!(
                    ds.true_overlap(i, j),
                    ds.origins[i].overlap_with(&ds.origins[j]),
                    "dataset and origin disagree at ({i},{j})"
                );
                if ds.origins[i].contains(&ds.origins[j]) {
                    assert_eq!(ds.true_overlap(i, j), ds.origins[j].span);
                }
            }
        }
    }

    #[test]
    fn circular_sampling_produces_wrapping_reads_that_match_the_genome() {
        let genome = generate_genome(&GenomeConfig { length: 6_000, ..Default::default() });
        let config = ReadSimConfig {
            depth: 10.0,
            mean_read_length: 800,
            min_read_length: 400,
            read_length_sd: 100,
            error_rate: 0.0,
            seed: 21,
            ..ReadSimConfig::default()
        };
        let (reads, origins, chimeric) = simulate_reads_with(&genome, &config, Topology::Circular);
        assert!(chimeric.iter().all(|&c| !c));
        let wrapping = origins.iter().filter(|o| o.end() > genome.len()).count();
        assert!(wrapping > 0, "wrap-around sampling must produce origin-crossing reads");
        for (i, origin) in origins.iter().enumerate() {
            let expected = circular_slice(&genome, origin.start, origin.span).oriented(origin.strand);
            assert_eq!(reads.seq(i), &expected, "read {i} does not match its circular origin");
        }
    }

    #[test]
    fn chimeric_reads_are_labelled_and_lead_with_their_origin() {
        let genome = generate_genome(&GenomeConfig { length: 30_000, ..Default::default() });
        let config = ReadSimConfig {
            depth: 10.0,
            mean_read_length: 1_000,
            min_read_length: 500,
            read_length_sd: 100,
            error_rate: 0.0,
            seed: 31,
            chimera_rate: 0.2,
            ..ReadSimConfig::default()
        };
        let (reads, origins, chimeric) = simulate_reads_with(&genome, &config, Topology::Linear);
        let n_chim = chimeric.iter().filter(|&&c| c).count();
        let rate = n_chim as f64 / reads.len() as f64;
        assert!((rate - 0.2).abs() < 0.08, "chimera rate {rate} too far from 0.2");
        for (i, origin) in origins.iter().enumerate() {
            let expected = genome.slice(origin.start, origin.end()).oriented(origin.strand);
            if chimeric[i] {
                // The leading segment maps to the origin; the read is longer.
                assert!(reads.seq(i).len() > origin.span);
                assert_eq!(&reads.seq(i).slice(0, origin.span), &expected);
            } else {
                assert_eq!(reads.seq(i), &expected);
            }
        }
    }

    #[test]
    fn length_models_hit_the_target_mean_with_the_right_shape() {
        let genome = generate_genome(&GenomeConfig { length: 200_000, ..Default::default() });
        let sample = |model: LengthModel| {
            let config = ReadSimConfig {
                depth: 10.0,
                mean_read_length: 2_000,
                min_read_length: 200,
                read_length_sd: 600,
                error_rate: 0.0,
                seed: 41,
                length_model: model,
                ..ReadSimConfig::default()
            };
            let (_, origins) = simulate_reads(&genome, &config);
            let mut lens: Vec<usize> = origins.iter().map(|o| o.span).collect();
            lens.sort_unstable();
            let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
            let median = lens[lens.len() / 2] as f64;
            (mean, median)
        };
        let (g_mean, _) = sample(LengthModel::Gaussian);
        let (ln_mean, ln_median) = sample(LengthModel::LogNormal);
        let (mix_mean, mix_median) = sample(LengthModel::EmpiricalMixture);
        assert!((g_mean - 2_000.0).abs() < 150.0, "gaussian mean {g_mean}");
        assert!((ln_mean - 2_000.0).abs() < 150.0, "log-normal mean {ln_mean}");
        // Right-skew: the median sits below the mean for both skewed models.
        assert!(ln_median < ln_mean, "log-normal must be right-skewed");
        assert!(mix_median < mix_mean, "mixture must be right-skewed");
        // The mixture's long tail reaches far beyond the Gaussian clamp range.
        assert!(mix_mean > 1_500.0, "mixture mean {mix_mean} collapsed");
    }

    #[test]
    fn scenario_datasets_build_with_their_advertised_shapes() {
        let p = ScenarioParams {
            genome_length: 6_000,
            depth: 8.0,
            mean_read_length: 500,
            error_rate: 0.02,
            seed: 5,
            ..ScenarioParams::default()
        };
        for kind in ScenarioKind::ALL {
            let ds = build_scenario(kind, &p);
            assert_eq!(ds.label, kind.label());
            assert!(ds.num_reads() > 10, "{:?} produced too few reads", kind);
            assert_eq!(ds.origins.len(), ds.num_reads());
            assert_eq!(ds.chimeric.len(), ds.num_reads());
            match kind {
                ScenarioKind::MetagenomeMix => {
                    assert_eq!(ds.genome.len(), 2 * p.genome_length);
                    assert!(ds.origins.iter().any(|o| o.start < p.genome_length));
                    assert!(ds.origins.iter().any(|o| o.start >= p.genome_length));
                }
                ScenarioKind::ChimericReads => {
                    assert!(ds.num_chimeric() > 0, "chimera scenario must label chimeras");
                }
                ScenarioKind::CircularGenome => {
                    assert_eq!(ds.topology, Topology::Circular);
                    assert!(ds.origins.iter().any(|o| o.end() > ds.genome.len()));
                }
                _ => {
                    assert_eq!(ds.topology, Topology::Linear);
                    assert_eq!(ds.num_chimeric(), 0);
                }
            }
            // Determinism: the same spec builds the same dataset.
            let again = build_scenario(kind, &p);
            assert_eq!(ds.reads, again.reads, "{:?} not deterministic", kind);
        }
    }

    #[test]
    fn dataset_presets_match_paper_statistics() {
        assert_eq!(DatasetSpec::CElegansLike.depth(), 40.0);
        assert_eq!(DatasetSpec::HSapiensLike.depth(), 10.0);
        assert_eq!(DatasetSpec::CElegansLike.mean_read_length(), 11_241);
        assert_eq!(DatasetSpec::HSapiensLike.mean_read_length(), 7_401);
        assert!((DatasetSpec::HSapiensLike.error_rate() - 0.15).abs() < 1e-9);
        assert_eq!(DatasetSpec::EColiLike.depth(), 30.0);
    }

    #[test]
    fn tiny_dataset_generates_quickly_and_consistently() {
        let ds = DatasetSpec::Tiny.generate(42);
        assert!(ds.num_reads() > 10, "tiny dataset should still have a few dozen reads");
        assert!((ds.achieved_depth() - 12.0).abs() < 4.0);
        let ds2 = DatasetSpec::Tiny.generate(42);
        assert_eq!(ds.reads, ds2.reads, "same seed must give the same dataset");
        let ds3 = DatasetSpec::Tiny.generate(43);
        assert_ne!(ds.reads, ds3.reads);
    }
}

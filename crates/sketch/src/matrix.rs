//! The reads × k-min-mers occurrence matrix (the sketch-space `A`).
//!
//! Mirrors `dibella_overlap::build_a_matrix` — block-partitioned construction
//! over virtual ranks, first-occurrence-per-column entries, the same
//! [`KmerOccurrence`] payload, the same [`DistMat2D`] CSR layout — but the
//! columns are *k-min-mers* whose IDs are assigned by a distributed
//! ownership pass:
//!
//! 1. every construction rank sketches its block of reads;
//! 2. each distinct `(read, key)` pair is sent to the key's owner rank
//!    (`key % nranks`) via the simulated all-to-all, accounted under
//!    [`CommPhase::SketchIndex`];
//! 3. owners count the reads per key and drop keys outside
//!    `[min_reads, max_reads]` (singletons cannot seed a candidate pair;
//!    high-frequency k-min-mers are repeats);
//! 4. surviving keys are allgathered (accounted as one broadcast per owner)
//!    and globally sorted — column IDs are ranks in that sorted order, so
//!    the matrix is bit-identical for any rank or thread count.
//!
//! The result plugs straight into `detect_candidates_2d`: the
//! `OverlapSemiring` SUMMA (including the symmetric `A·Aᵀ` path) neither
//! knows nor cares that a column is a k-min-mer rather than a k-mer.

use crate::config::SketchConfig;
use crate::kminmer::{sketch_read, KminmerHit, ReadSketch};
use dibella_dist::{
    alltoallv_counted, par_ranks, record_broadcast, BlockDist, CommPhase, CommStats, ProcessGrid,
};
use dibella_overlap::KmerOccurrence;
use dibella_seq::ReadSet;
use dibella_sparse::{DistMat2D, Triples};

pub use dibella_dist::extras::{
    SKETCH_COLUMNS_KEY, SKETCH_DENSITY_PPM_KEY, SKETCH_DROPPED_RARE_KEY,
    SKETCH_DROPPED_REPETITIVE_KEY, SKETCH_HPC_RATIO_PPM_KEY, SKETCH_NNZ_KEY,
};

/// Size and selectivity counters of one sketch-matrix build.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SketchStats {
    /// Nonzeros of the matrix (distinct surviving `(read, k-min-mer)` pairs).
    pub nnz: u64,
    /// Number of k-min-mer columns.
    pub columns: u64,
    /// Total sketch-space k-mer windows scanned across all reads.
    pub total_kmers: u64,
    /// Total minimizers selected across all reads.
    pub minimizers: u64,
    /// Total raw bases across all reads.
    pub raw_bases: u64,
    /// Total sketch-space (HPC) bases across all reads.
    pub sketch_bases: u64,
    /// Distinct k-min-mers dropped for occurring in `< min_reads` reads.
    pub dropped_rare: u64,
    /// Distinct k-min-mers masked as repetitive (`> max_reads` reads).
    pub dropped_repetitive: u64,
}

impl SketchStats {
    /// Achieved minimizer density (selected / scanned sketch-space k-mers).
    pub fn achieved_density(&self) -> f64 {
        if self.total_kmers == 0 {
            0.0
        } else {
            self.minimizers as f64 / self.total_kmers as f64
        }
    }

    /// HPC compression ratio: raw bases per sketch-space base.
    pub fn hpc_ratio(&self) -> f64 {
        if self.sketch_bases == 0 {
            1.0
        } else {
            self.raw_bases as f64 / self.sketch_bases as f64
        }
    }
}

/// Build the reads × k-min-mers occurrence matrix, distributed over `grid`,
/// with the ownership/ID-assignment exchange accounted on `stats` under
/// [`CommPhase::SketchIndex`] (plus the `sketch_*` extras).
///
/// The output is bit-identical for any `construction_ranks >= 1` and any
/// thread count: k-min-mer occurrence counts are global, and column IDs are
/// positions in the globally sorted surviving-key list.
pub fn build_sketch_matrix(
    reads: &ReadSet,
    cfg: &SketchConfig,
    grid: ProcessGrid,
    construction_ranks: usize,
    stats: &CommStats,
) -> (DistMat2D<KmerOccurrence>, SketchStats) {
    assert!(construction_ranks > 0);
    let nranks = construction_ranks;
    let read_dist = BlockDist::new(reads.len(), nranks);

    // Pass 1: every rank sketches its block of reads (HPC + density
    // selection + k-min-mer construction, all read-local).
    let per_rank: Vec<Vec<(usize, ReadSketch)>> = par_ranks(nranks, |rank| {
        read_dist
            .range(rank)
            .map(|read_idx| (read_idx, sketch_read(reads.seq(read_idx), cfg)))
            .collect()
    });

    let mut agg = SketchStats::default();
    let mut sketches: Vec<Vec<KminmerHit>> = vec![Vec::new(); reads.len()];
    for block in &per_rank {
        for (read_idx, sk) in block {
            agg.total_kmers += sk.kmers;
            agg.minimizers += sk.minimizers;
            agg.raw_bases += sk.raw_len;
            agg.sketch_bases += sk.sketch_len;
            sketches[*read_idx] = sk.hits.clone();
        }
    }

    // Pass 2: ownership exchange — each distinct (read, key) pair sends its
    // key to the owner rank `key % nranks` (one u64 word per pair).
    let send: Vec<Vec<Vec<u64>>> = per_rank
        .iter()
        .map(|block| {
            let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); nranks];
            for (_, sk) in block {
                for hit in &sk.hits {
                    buckets[(hit.key % nranks as u64) as usize].push(hit.key);
                }
            }
            buckets
        })
        .collect();
    let recv: Vec<Vec<u64>> = alltoallv_counted(send, stats, CommPhase::SketchIndex, 1);

    // Owners count reads per key and apply the occurrence filter.
    let mut survivors: Vec<u64> = Vec::new();
    for keys in &recv {
        // BTreeMap, not HashMap: the dropped_rare/dropped_repetitive tallies
        // below iterate this map, so its order must be deterministic.
        let mut counts: std::collections::BTreeMap<u64, u32> = std::collections::BTreeMap::new();
        for &key in keys {
            *counts.entry(key).or_insert(0) += 1;
        }
        let mut owned: Vec<u64> = Vec::new();
        for (key, count) in counts {
            if count < cfg.min_reads {
                agg.dropped_rare += 1;
            } else if count > cfg.max_reads {
                agg.dropped_repetitive += 1;
            } else {
                owned.push(key);
            }
        }
        // Allgather of this owner's surviving keys (for the global sort).
        record_broadcast(stats, CommPhase::SketchIndex, owned.len() as u64, nranks);
        survivors.extend(owned);
    }

    // Global ID assignment: column = rank of the key in sorted order.
    survivors.sort_unstable();
    agg.columns = survivors.len() as u64;

    // Pass 3: emit triples against the global column map.
    let mut entries: Vec<(usize, usize, KmerOccurrence)> = Vec::new();
    for (read_idx, hits) in sketches.iter().enumerate() {
        for hit in hits {
            if let Ok(col) = survivors.binary_search(&hit.key) {
                entries.push((
                    read_idx,
                    col,
                    KmerOccurrence { pos: hit.pos, forward: hit.forward },
                ));
            }
        }
    }
    agg.nnz = entries.len() as u64;
    let triples = Triples::from_entries(reads.len(), survivors.len(), entries);

    stats.bump_extra(SKETCH_NNZ_KEY, agg.nnz);
    stats.bump_extra(SKETCH_COLUMNS_KEY, agg.columns);
    stats.bump_extra(SKETCH_DENSITY_PPM_KEY, (agg.achieved_density() * 1e6) as u64);
    stats.bump_extra(SKETCH_HPC_RATIO_PPM_KEY, (agg.hpc_ratio() * 1e6) as u64);
    stats.bump_extra(SKETCH_DROPPED_RARE_KEY, agg.dropped_rare);
    stats.bump_extra(SKETCH_DROPPED_REPETITIVE_KEY, agg.dropped_repetitive);

    (DistMat2D::from_triples(grid, &triples), agg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibella_dist::with_threads;
    use dibella_seq::DatasetSpec;

    fn setup() -> (ReadSet, SketchConfig) {
        let ds = DatasetSpec::Tiny.generate(41);
        (ds.reads, SketchConfig::for_tests(13))
    }

    #[test]
    fn matrix_has_reads_rows_and_sorted_kminmer_columns() {
        let (reads, cfg) = setup();
        let stats = CommStats::new();
        let grid = ProcessGrid::square(4);
        let (a, info) = build_sketch_matrix(&reads, &cfg, grid, 4, &stats);
        assert_eq!(a.nrows(), reads.len());
        assert_eq!(a.ncols(), info.columns as usize);
        assert_eq!(a.nnz(), info.nnz as usize);
        assert!(a.nnz() > 0, "a 12x dataset must produce shared k-min-mers");
        assert!(info.achieved_density() > 0.0 && info.achieved_density() < 0.5);
        assert!(info.hpc_ratio() > 1.0, "simulated DNA has homopolymer runs");
    }

    #[test]
    fn construction_rank_count_does_not_change_the_matrix() {
        let (reads, cfg) = setup();
        let grid = ProcessGrid::square(4);
        let build = |ranks: usize| {
            let stats = CommStats::new();
            build_sketch_matrix(&reads, &cfg, grid, ranks, &stats).0.to_local_csr()
        };
        let one = build(1);
        assert_eq!(one, build(4));
        assert_eq!(one, build(7));
    }

    #[test]
    fn thread_count_does_not_change_the_matrix() {
        let (reads, cfg) = setup();
        let grid = ProcessGrid::square(4);
        let build = || {
            let stats = CommStats::new();
            build_sketch_matrix(&reads, &cfg, grid, 4, &stats).0.to_local_csr()
        };
        let t1 = with_threads(1, build);
        let t2 = with_threads(2, build);
        let t4 = with_threads(4, build);
        assert_eq!(t1, t2);
        assert_eq!(t1, t4);
    }

    #[test]
    fn exchange_is_accounted_under_sketch_index() {
        let (reads, cfg) = setup();
        let stats = CommStats::new();
        let grid = ProcessGrid::square(4);
        let (_, info) = build_sketch_matrix(&reads, &cfg, grid, 4, &stats);
        let snap = stats.snapshot();
        let phase = snap.phase(CommPhase::SketchIndex);
        assert!(phase.words > 0, "multi-rank construction must move key words");
        assert!(phase.messages > 0);
        assert_eq!(snap.extras["sketch_nnz"], info.nnz);
        assert_eq!(snap.extras["sketch_columns"], info.columns);
        assert!(snap.extras["sketch_density_ppm"] > 0);
        assert!(snap.extras["sketch_hpc_ratio_ppm"] > 1_000_000);
    }

    #[test]
    fn single_rank_construction_is_communication_free() {
        let (reads, cfg) = setup();
        let stats = CommStats::new();
        let grid = ProcessGrid::square(1);
        build_sketch_matrix(&reads, &cfg, grid, 1, &stats);
        let phase = stats.snapshot().phase(CommPhase::SketchIndex);
        assert_eq!(phase.words, 0, "self-traffic and a 1-rank broadcast are free");
        assert_eq!(phase.messages, 0);
    }

    #[test]
    fn singleton_kminmers_get_no_columns() {
        let (reads, mut cfg) = setup();
        cfg.min_reads = 2;
        let stats = CommStats::new();
        let grid = ProcessGrid::square(1);
        let (a, info) = build_sketch_matrix(&reads, &cfg, grid, 3, &stats);
        assert!(info.dropped_rare > 0, "some k-min-mers occur in only one read");
        // Every surviving column appears in at least two rows.
        let mut col_counts = vec![0u32; a.ncols()];
        for (_, col, _) in a.to_local_csr().iter() {
            col_counts[col as usize] += 1;
        }
        assert!(col_counts.iter().all(|&c| c >= cfg.min_reads));
    }

    #[test]
    fn sketch_matrix_is_much_smaller_than_the_exact_a() {
        let ds = DatasetSpec::Small.generate(42);
        let cfg = SketchConfig::for_tests(13);
        let sel = dibella_seq::KmerSelection { k: 13, min_count: 2, max_count: 100 };
        let table = dibella_seq::count_kmers_serial(&ds.reads, &sel);
        let grid = ProcessGrid::square(1);
        let exact = dibella_overlap::build_a_matrix(&ds.reads, &table, 13, grid, 1);
        let stats = CommStats::new();
        let (sketch, _) = build_sketch_matrix(&ds.reads, &cfg, grid, 1, &stats);
        assert!(
            sketch.nnz() * 3 < exact.nnz(),
            "sketch nnz {} must be well under exact nnz {}",
            sketch.nnz(),
            exact.nnz()
        );
    }
}

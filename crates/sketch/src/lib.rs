//! # dibella-sketch — k-min-mer candidate generation in front of SUMMA
//!
//! The paper's occurrence matrix `A` has one column per *reliable k-mer*, so
//! every downstream cost (SUMMA broadcast words, SpGEMM flops, alignment
//! candidates) scales with a dense `A`.  The long-read state of the art
//! (mapquik, Ekim et al.) instead indexes sparse **k-min-mers**: tuples of
//! `k` consecutive density-selected minimizers over homopolymer-compressed
//! sequence.  This crate builds that representation as a drop-in candidate
//! source:
//!
//! 1. homopolymer compression with an exact compressed→raw coordinate map
//!    ([`dibella_seq::hpc`]);
//! 2. density-bound minimizer selection ([`dibella_seq::sketch`], where the
//!    primitives are shared with the minimap2-style baseline overlapper);
//! 3. k-min-mer construction in canonical orientation ([`kminmer`]);
//! 4. a distributed ownership/ID-assignment pass and a reads × k-min-mers
//!    [`SketchMatrix`](matrix) with the *same* entry type ([`KmerOccurrence`])
//!    and CSR shape the exact path produces ([`matrix`]), so the
//!    `OverlapSemiring` SUMMA — including the symmetric `A·Aᵀ` path — runs
//!    unchanged on top.
//!
//! The matrix is roughly `density`× smaller in nnz than the exact `A`, which
//! is the single biggest lever on everything downstream.

#![warn(missing_docs)]

pub mod config;
pub mod kminmer;
pub mod matrix;

pub use config::SketchConfig;
pub use dibella_overlap::KmerOccurrence;
pub use kminmer::{sketch_read, KminmerHit, ReadSketch};
pub use matrix::{
    build_sketch_matrix, SketchStats, SKETCH_COLUMNS_KEY, SKETCH_DENSITY_PPM_KEY,
    SKETCH_DROPPED_RARE_KEY, SKETCH_DROPPED_REPETITIVE_KEY, SKETCH_HPC_RATIO_PPM_KEY,
    SKETCH_NNZ_KEY,
};

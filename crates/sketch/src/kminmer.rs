//! k-min-mer construction: canonical tuples of consecutive minimizers.
//!
//! A k-min-mer is `kmm` consecutive density-selected minimizers of a read's
//! (optionally homopolymer-compressed) sequence.  Like a canonical k-mer, a
//! k-min-mer must have a strand-invariant identity: the reverse complement of
//! a read yields the same minimizer hashes in reverse order (canonical k-mer
//! hashes are strand-invariant), so the canonical form of a k-min-mer is the
//! lexicographically smaller of its hash tuple and that tuple reversed.
//!
//! Each occurrence is anchored for alignment seeding exactly like an exact
//! k-mer occurrence: [`KminmerHit::pos`] is the **raw** start coordinate of
//! the *leading minimizer of the canonical tuple* (the positionally first
//! minimizer when the occurrence is forward-canonical, the positionally last
//! when reverse-canonical), and [`KminmerHit::forward`] is that minimizer's
//! canonical orientation.  Two reads sharing a k-min-mer then satisfy the
//! same invariants `OverlapSemiring` and the x-drop seeding transform assume
//! for shared canonical k-mers: equal `forward` flags mean the `k`-base
//! windows at the two positions match (in HPC space), and unequal flags mean
//! one window matches the reverse complement of the other.

use crate::config::SketchConfig;
use dibella_seq::hpc::HpcSeq;
use dibella_seq::sketch::density_minimizers;
use dibella_seq::DnaSeq;

/// One k-min-mer occurrence in one read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KminmerHit {
    /// Strand-invariant identity: a 64-bit hash of the canonical minimizer
    /// hash tuple.
    pub key: u64,
    /// Raw start coordinate (in the read as stored) of the leading minimizer
    /// of the canonical tuple.  Always `<= read_len - k`, so a `k`-base seed
    /// window at `pos` is in bounds.
    pub pos: u32,
    /// The canonical orientation of the leading minimizer at `pos` — the
    /// same flag an exact [`KmerOccurrence`](dibella_overlap::KmerOccurrence)
    /// stores, so `OverlapSemiring`'s `same_strand = a.forward == b.forward`
    /// exactly encodes whether the two anchor windows match directly or
    /// reverse-complemented.
    pub forward: bool,
}

/// The k-min-mer sketch of one read, plus the counters the achieved-density
/// and HPC-ratio accounting needs.
#[derive(Debug, Clone, Default)]
pub struct ReadSketch {
    /// Distinct k-min-mer occurrences (first occurrence per key, in position
    /// order).
    pub hits: Vec<KminmerHit>,
    /// Number of minimizers selected from this read.
    pub minimizers: u64,
    /// Number of sketch-space k-mer windows the selection ran over.
    pub kmers: u64,
    /// Raw read length in bases.
    pub raw_len: u64,
    /// Sketch-space length (homopolymer-compressed length when HPC is on,
    /// raw length otherwise).
    pub sketch_len: u64,
}

/// Combine a tuple element into a running 64-bit tuple hash
/// (boost-`hash_combine` style; order-sensitive by construction).
fn combine(acc: u64, h: u64) -> u64 {
    acc ^ h
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(acc << 6)
        .wrapping_add(acc >> 2)
}

/// Hash a minimizer-hash tuple, reading it forward or reversed.
fn tuple_hash(window: &[(u64, u32, bool)], reversed: bool) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325;
    if reversed {
        for m in window.iter().rev() {
            acc = combine(acc, m.0);
        }
    } else {
        for m in window {
            acc = combine(acc, m.0);
        }
    }
    acc
}

/// Whether the tuple read forward is lexicographically no greater than the
/// tuple read in reverse (the canonical orientation test).
fn forward_is_canonical(window: &[(u64, u32, bool)]) -> bool {
    let n = window.len();
    for i in 0..n {
        let fwd = window[i].0;
        let rev = window[n - 1 - i].0;
        if fwd != rev {
            return fwd < rev;
        }
    }
    true // palindromic tuple: both orientations are identical
}

/// Compute the k-min-mer sketch of one read.
///
/// Minimizers are density-selected over the (optionally homopolymer-
/// compressed) sequence; every window of `cfg.kmm` consecutive minimizers
/// becomes one canonical k-min-mer occurrence anchored at the raw coordinate
/// of its leading minimizer.  Duplicate keys within the read keep their first
/// occurrence, mirroring the exact `A` matrix's one-position-per-nonzero
/// rule.
pub fn sketch_read(seq: &DnaSeq, cfg: &SketchConfig) -> ReadSketch {
    assert!(cfg.kmm >= 1, "a k-min-mer needs at least one minimizer");
    let mut sketch = ReadSketch {
        raw_len: seq.len() as u64,
        ..ReadSketch::default()
    };

    // Stage 1: homopolymer compression (keeping the exact coordinate map).
    let hpc = cfg.use_hpc.then(|| HpcSeq::compress(seq));
    let space: &DnaSeq = hpc.as_ref().map_or(seq, |h| h.compressed());
    let to_raw = |p: u32| match &hpc {
        Some(h) => h.decompress_coord(p as usize) as u32,
        None => p,
    };
    sketch.sketch_len = space.len() as u64;
    sketch.kmers = (space.len() + 1).saturating_sub(cfg.k) as u64;

    // Stage 2: density-bound minimizer selection in sketch space.
    let mins = density_minimizers(space, cfg.k, cfg.density);
    sketch.minimizers = mins.len() as u64;
    if mins.len() < cfg.kmm {
        return sketch;
    }

    // Stage 3: canonical k-min-mers over consecutive minimizer windows.
    let mut seen = std::collections::HashSet::new();
    for window in mins.windows(cfg.kmm) {
        let forward = forward_is_canonical(window);
        let key = tuple_hash(window, !forward);
        if !seen.insert(key) {
            continue;
        }
        let leading = if forward { window[0] } else { window[cfg.kmm - 1] };
        sketch.hits.push(KminmerHit { key, pos: to_raw(leading.1), forward: leading.2 });
    }
    sketch
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibella_seq::DatasetSpec;
    use std::collections::HashMap;

    fn cfg() -> SketchConfig {
        SketchConfig::for_tests(13)
    }

    #[test]
    fn sketch_is_much_sparser_than_the_kmer_set() {
        let ds = DatasetSpec::Tiny.generate(31);
        let seq = ds.reads.seq(0);
        let sk = sketch_read(seq, &cfg());
        assert!(!sk.hits.is_empty());
        assert!(sk.kmers > 0 && sk.minimizers > 0);
        // k-min-mers are bounded by minimizers, which are ~density of k-mers.
        assert!(sk.hits.len() as u64 <= sk.minimizers);
        assert!((sk.minimizers as f64) < sk.kmers as f64 * 0.4);
        // HPC shortens the sequence.
        assert!(sk.sketch_len < sk.raw_len);
    }

    #[test]
    fn keys_are_strand_invariant_and_orientations_flip() {
        let ds = DatasetSpec::Tiny.generate(32);
        let seq = ds.reads.seq(0);
        let rc = seq.reverse_complement();
        let fwd = sketch_read(seq, &cfg());
        let rev = sketch_read(&rc, &cfg());
        let fwd_keys: HashMap<u64, bool> = fwd.hits.iter().map(|h| (h.key, h.forward)).collect();
        let rev_keys: HashMap<u64, bool> = rev.hits.iter().map(|h| (h.key, h.forward)).collect();
        assert_eq!(
            fwd.hits.len(),
            rev.hits.len(),
            "reverse complement must yield the same k-min-mers"
        );
        let mut flipped = 0usize;
        for (key, f) in &fwd_keys {
            let r = rev_keys.get(key).expect("key missing from reverse complement sketch");
            if *r != *f {
                flipped += 1;
            }
        }
        // Every non-palindromic tuple flips orientation on the other strand.
        assert!(flipped * 10 >= fwd_keys.len() * 9, "{flipped}/{} flipped", fwd_keys.len());
    }

    #[test]
    fn anchor_positions_are_seed_safe_and_hold_the_leading_minimizer() {
        let ds = DatasetSpec::Tiny.generate(33);
        let c = cfg();
        for i in 0..ds.reads.len() {
            let seq = ds.reads.seq(i);
            let sk = sketch_read(seq, &c);
            for hit in &sk.hits {
                assert!(
                    (hit.pos as usize) + c.k <= seq.len(),
                    "read {i}: anchor {} leaves no room for a {}-base seed window",
                    hit.pos,
                    c.k
                );
            }
        }
    }

    #[test]
    fn anchors_of_a_shared_key_point_at_matching_hpc_windows() {
        // The invariant OverlapSemiring + x-drop seeding rely on: if two
        // reads share a key with equal `forward` flags, the HPC k-windows at
        // the two anchors are identical; with unequal flags, one window is
        // the reverse complement of the other.
        let ds = DatasetSpec::Tiny.generate(34);
        let c = cfg();
        let sketches: Vec<ReadSketch> =
            (0..ds.reads.len()).map(|i| sketch_read(ds.reads.seq(i), &c)).collect();
        let mut by_key: HashMap<u64, Vec<(usize, KminmerHit)>> = HashMap::new();
        for (i, sk) in sketches.iter().enumerate() {
            for h in &sk.hits {
                by_key.entry(h.key).or_default().push((i, *h));
            }
        }
        let hpc_window = |read: usize, raw_pos: u32| -> DnaSeq {
            let hpc = HpcSeq::compress(ds.reads.seq(read));
            let start = hpc.compress_coord(raw_pos as usize);
            hpc.compressed().slice(start, start + c.k)
        };
        let mut checked = 0usize;
        for hits in by_key.values() {
            for pair in hits.windows(2) {
                let ((ra, a), (rb, b)) = (pair[0], pair[1]);
                if ra == rb {
                    continue;
                }
                let wa = hpc_window(ra, a.pos);
                let wb = hpc_window(rb, b.pos);
                if a.forward == b.forward {
                    assert_eq!(wa, wb, "same-orientation anchors must match");
                } else {
                    assert_eq!(wa, wb.reverse_complement(), "cross-strand anchors must RC-match");
                }
                checked += 1;
            }
        }
        assert!(checked > 10, "dataset must exercise shared keys (checked {checked})");
    }

    #[test]
    fn duplicate_keys_keep_their_first_occurrence() {
        let ds = DatasetSpec::Tiny.generate(35);
        let c = cfg();
        for i in 0..ds.reads.len() {
            let sk = sketch_read(ds.reads.seq(i), &c);
            let mut keys = std::collections::HashSet::new();
            for h in &sk.hits {
                assert!(keys.insert(h.key), "read {i} emitted key {} twice", h.key);
            }
        }
    }

    #[test]
    fn short_and_empty_reads_yield_empty_sketches() {
        let c = cfg();
        assert!(sketch_read(&DnaSeq::new(), &c).hits.is_empty());
        let short: DnaSeq = "ACGTACGT".parse().unwrap();
        assert!(sketch_read(&short, &c).hits.is_empty());
    }

    #[test]
    fn hpc_off_uses_raw_coordinates() {
        let ds = DatasetSpec::Tiny.generate(36);
        let mut c = cfg();
        c.use_hpc = false;
        let seq = ds.reads.seq(0);
        let sk = sketch_read(seq, &c);
        assert_eq!(sk.sketch_len, sk.raw_len);
        for hit in &sk.hits {
            assert!((hit.pos as usize) + c.k <= seq.len());
        }
    }
}

//! Parameters of the sketch-space candidate path.

use serde::{Deserialize, Serialize};

/// Parameters controlling HPC, minimizer selection and k-min-mer
/// construction.
///
/// Defaults follow mapquik's regime scaled to this repo's simulated read
/// lengths: HPC on, density-bound selection (density is a *direct* knob, the
/// expected fraction of sketch-space k-mers kept), and short k-min-mers of
/// `kmm` consecutive minimizers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SketchConfig {
    /// Minimizer k-mer length, measured in sketch space (homopolymer-
    /// compressed bases when [`SketchConfig::use_hpc`] is set).  Must be
    /// `<= dibella_seq::kmer::MAX_K`.
    pub k: usize,
    /// Number of consecutive minimizers per k-min-mer (mapquik's `k`; `2`
    /// keeps recall high at the small simulated scales).
    pub kmm: usize,
    /// Minimizer density: a k-mer is selected iff its canonical hash is
    /// below `density · 2^64`, so this is the expected selected fraction.
    pub density: f64,
    /// Whether to homopolymer-compress reads before selecting minimizers.
    pub use_hpc: bool,
    /// A k-min-mer must occur in at least this many reads to get a column
    /// (`2` drops singleton columns, which cannot seed a candidate pair).
    pub min_reads: u32,
    /// A k-min-mer occurring in more than this many reads is masked as
    /// repetitive (the analogue of the exact path's `max_count` and the
    /// minimizer baseline's `max_occurrences`).
    pub max_reads: u32,
}

impl Default for SketchConfig {
    fn default() -> Self {
        Self { k: 17, kmm: 2, density: 0.08, use_hpc: true, min_reads: 2, max_reads: 200 }
    }
}

impl SketchConfig {
    /// Settings for the short (few-hundred-base) reads used in tests: the
    /// minimizer length matches the exact path's `k` so alignment seed
    /// windows are comparable, and the density is raised so short overlaps
    /// still share consecutive minimizers.
    pub fn for_tests(k: usize) -> Self {
        Self { k, kmm: 2, density: 0.2, use_hpc: true, min_reads: 2, max_reads: 500 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = SketchConfig::default();
        assert!(cfg.k <= dibella_seq::kmer::MAX_K);
        assert!(cfg.kmm >= 2);
        assert!(cfg.density > 0.0 && cfg.density < 1.0);
        assert!(cfg.min_reads >= 2, "singleton columns cannot seed a pair");
        assert!(cfg.max_reads > cfg.min_reads);
    }

    #[test]
    fn test_preset_matches_requested_k() {
        let cfg = SketchConfig::for_tests(13);
        assert_eq!(cfg.k, 13);
        assert!(cfg.density > SketchConfig::default().density);
    }
}
